"""Tests for fairness, convergence, and summary statistics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (cdf_points, convergence_time, jain_index,
                           normalize, post_convergence_stats, summary,
                           throughput_ratio)


class TestJain:
    def test_equal_allocation_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_total_starvation(self):
        assert jain_index([10.0, 0.0]) == pytest.approx(0.5)

    def test_known_value(self):
        # (1+2+3)^2 / (3 * 14)
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1.0, 2.0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.001, 1000.0), min_size=1, max_size=10))
    def test_bounded(self, xs):
        index = jain_index(xs)
        assert 1.0 / len(xs) - 1e-9 <= index <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.001, 1000.0), min_size=2, max_size=8),
           st.floats(0.1, 10.0))
    def test_scale_invariant(self, xs, scale):
        assert jain_index(xs) == pytest.approx(
            jain_index([x * scale for x in xs]))


class TestThroughputRatio:
    def test_fair_is_half(self):
        assert throughput_ratio(10.0, 10.0) == 0.5

    def test_zero_total_neutral(self):
        assert throughput_ratio(0.0, 0.0) == 0.5


class TestConvergence:
    def _series(self, values, dt=0.5):
        times = [i * dt for i in range(len(values))]
        return times, values

    def test_stable_series_converges_immediately(self):
        times, rates = self._series([10.0] * 30)
        assert convergence_time(times, rates, entry_time=0.0) == 0.0

    def test_ramp_then_stable(self):
        rates = [i for i in range(10)] + [10.0] * 30
        times, rates = self._series(rates)
        conv = convergence_time(times, rates, entry_time=0.0)
        assert conv is not None
        assert 2.0 <= conv <= 5.0

    def test_oscillating_never_converges(self):
        rates = [1.0, 30.0] * 20
        times, rates = self._series(rates)
        assert convergence_time(times, rates, entry_time=0.0) is None

    def test_post_convergence_stats(self):
        rates = [0.0] * 6 + [10.0] * 30
        times, rates = self._series(rates)
        stats = post_convergence_stats(times, rates, entry_time=0.0)
        assert stats["avg_throughput"] == pytest.approx(10.0)
        assert stats["stability"] == pytest.approx(0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            convergence_time([0.0, 1.0], [1.0], entry_time=0.0)


class TestStats:
    def test_cdf_points(self):
        values, probs = cdf_points([3.0, 1.0, 2.0])
        assert values == [1.0, 2.0, 3.0]
        assert probs == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_requires_data(self):
        with pytest.raises(ValueError):
            cdf_points([])

    def test_summary(self):
        stats = summary([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["range"] == pytest.approx(2.0)
        assert stats["min"] == 1.0 and stats["max"] == 3.0

    def test_normalize_by_max(self):
        assert normalize([1.0, 2.0, 4.0]) == pytest.approx([0.25, 0.5, 1.0])

    def test_normalize_with_reference(self):
        assert normalize([1.0, 2.0], reference=10.0) == pytest.approx(
            [0.1, 0.2])
