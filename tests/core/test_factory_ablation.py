"""Tests for factories, the generic make_libra, and the eval-order flag."""

import pytest

from repro.core import (LibraConfig, make_b_libra, make_c_libra,
                        make_clean_slate, make_libra)
from repro.core.utility import PRESETS
from repro.simnet.network import Dumbbell
from repro.simnet.trace import wired_trace


class TestFactories:
    def test_c_libra_uses_cubic(self):
        from repro.cca.cubic import Cubic
        assert isinstance(make_c_libra().classic, Cubic)

    def test_b_libra_uses_bbr_config(self):
        controller = make_b_libra()
        assert controller.config.explore_rtts == 3.0

    def test_preset_object_accepted(self):
        controller = make_c_libra(utility_preset=PRESETS["th-1"])
        assert controller.config.utility.alpha == 2.0

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            make_c_libra(utility_preset="turbo")

    def test_clean_slate_has_hold_classic(self):
        controller = make_clean_slate()
        assert controller.classic.name == "hold"


class TestGenericLibra:
    def test_over_westwood(self):
        controller = make_libra("westwood", seed=1)
        assert controller.name == "libra-westwood"
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03, seed=1)
        net.add_flow(controller)
        assert net.run(6.0).utilization > 0.5

    def test_cubic_alias_matches_c_libra(self):
        assert make_libra("cubic").name == "c-libra"
        assert make_libra("bbr").config.explore_rtts == 3.0

    def test_unknown_classic_rejected(self):
        with pytest.raises(KeyError):
            make_libra("quic")


class TestEvalOrderAblation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LibraConfig(eval_order="random")

    def test_higher_first_swaps_order(self):
        from repro.cca.cubic import Cubic
        from repro.core.libra import LibraController
        from repro.simnet.packet import AckSample

        def drive(order):
            controller = LibraController(
                Cubic(), policy=None,
                config=LibraConfig(startup_rtts=1.0, eval_order=order))
            controller.start(0.0, 1500)
            t = 0.0
            firsts = []
            prev_stage = None
            from repro.core.libra import EVAL_LOW
            for _ in range(500):
                t += 0.01
                controller.on_ack(AckSample(
                    now=t, seq=0, rtt=0.05, min_rtt=0.05, srtt=0.05,
                    acked_bytes=1500, delivery_rate=0.0, inflight_bytes=0.0,
                    sent_time=t - 0.05))
                if controller.stage == EVAL_LOW and prev_stage != EVAL_LOW:
                    firsts.append(controller._eval_lo <= controller._eval_hi)
                prev_stage = controller.stage
            return firsts

        assert all(drive("lower-first"))
        # higher-first evaluates the larger candidate in the first EI
        # whenever the candidates differ
        swapped = drive("higher-first")
        assert any(not x for x in swapped) or all(x for x in swapped)
