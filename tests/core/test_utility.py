"""Tests for Eq. 1's utility function and presets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.utility import (DEFAULT_PARAMS, PRESETS, UtilityParams,
                                utility, utility_derivative)


class TestParams:
    def test_paper_defaults(self):
        p = DEFAULT_PARAMS
        assert (p.t, p.alpha, p.beta, p.gamma) == (0.9, 1.0, 900.0, 11.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilityParams(t=1.0)
        with pytest.raises(ValueError):
            UtilityParams(t=0.0)
        with pytest.raises(ValueError):
            UtilityParams(alpha=-1.0)

    def test_presets_scale_correct_knob(self):
        assert PRESETS["th-1"].alpha == 2.0
        assert PRESETS["th-2"].alpha == 3.0
        assert PRESETS["la-1"].beta == 1800.0
        assert PRESETS["la-2"].beta == 2700.0
        assert PRESETS["default"] == DEFAULT_PARAMS


class TestUtility:
    def test_monotone_in_rate_when_clean(self):
        assert utility(20, 0.0, 0.0) > utility(10, 0.0, 0.0)

    def test_gradient_penalty_only_positive(self):
        clean = utility(10, 0.0, 0.0)
        assert utility(10, -0.5, 0.0) == clean
        assert utility(10, 0.5, 0.0) < clean

    def test_loss_penalty(self):
        assert utility(10, 0.0, 0.1) < utility(10, 0.0, 0.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            utility(-1.0, 0.0, 0.0)

    def test_throughput_preset_favors_rate(self):
        # A (faster, slightly growing queue) vs (slower, clean) pair that
        # flips with the preference weights.
        fast = (30.0, 0.15, 0.0)
        slow = (20.0, 0.0, 0.0)
        th = PRESETS["th-2"]
        la = PRESETS["la-2"]
        assert utility(*fast, th) - utility(*slow, th) > \
               utility(*fast, la) - utility(*slow, la)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.1, 200.0), st.floats(0.1, 200.0),
           st.floats(0.0, 2.0), st.floats(0.0, 0.5))
    def test_concave_in_rate(self, x1, x2, gradient, loss):
        """u(mid) >= (u(x1)+u(x2))/2 — strict concavity of Eq. 1."""
        mid = (x1 + x2) / 2
        lhs = utility(mid, gradient, loss)
        rhs = (utility(x1, gradient, loss) + utility(x2, gradient, loss)) / 2
        assert lhs >= rhs - 1e-9


class TestDerivative:
    def test_matches_numeric(self):
        for x in (1.0, 10.0, 80.0):
            eps = 1e-6
            numeric = (utility(x + eps, 0.1, 0.02)
                       - utility(x - eps, 0.1, 0.02)) / (2 * eps)
            assert utility_derivative(x, 0.1, 0.02) == pytest.approx(
                numeric, rel=1e-4)

    def test_infinite_at_zero(self):
        assert utility_derivative(0.0, 0.0, 0.0) == float("inf")

    def test_decreasing_in_rate(self):
        assert utility_derivative(1.0, 0.0, 0.0) > \
               utility_derivative(100.0, 0.0, 0.0)
