"""Executable checks of the paper's Appendix A analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.equilibrium import (best_response, droptail_gradient,
                                    droptail_loss, game_utility,
                                    is_concave_in_own_rate,
                                    symmetric_equilibrium)


class TestDroptailModel:
    def test_no_loss_under_capacity(self):
        assert droptail_loss(50.0, 100.0) == 0.0

    def test_loss_formula_over_capacity(self):
        assert droptail_loss(200.0, 100.0) == pytest.approx(0.5)

    def test_gradient_formula(self):
        assert droptail_gradient(150.0, 100.0) == pytest.approx(0.5)
        assert droptail_gradient(50.0, 100.0) == 0.0

    def test_gradient_requires_capacity(self):
        with pytest.raises(ValueError):
            droptail_gradient(1.0, 0.0)


class TestGameUtility:
    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            game_utility([-1.0, 2.0], 0, 10.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(10.0, 100.0), st.floats(0.0, 150.0))
    def test_concave_in_own_rate(self, capacity, others):
        """Lemma A.2 part 1, numerically."""
        assert is_concave_in_own_rate(capacity, others)


class TestEquilibrium:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 4), st.floats(12.0, 96.0))
    def test_symmetric_equilibrium_exists_and_saturates(self, n, capacity):
        """Lemma A.1/A.3: the fair equilibrium has n*x* >= C."""
        x_star = symmetric_equilibrium(n, capacity)
        assert n * x_star >= capacity * 0.99

    def test_equilibrium_is_best_response_fixed_point(self):
        n, capacity = 2, 48.0
        x_star = symmetric_equilibrium(n, capacity)
        response = best_response(np.full(n, x_star), 0, capacity)
        assert response == pytest.approx(x_star, rel=0.05)

    def test_no_profitable_unilateral_deviation(self):
        """Theorem 4.1's inequality at the symmetric equilibrium."""
        n, capacity = 3, 60.0
        x_star = symmetric_equilibrium(n, capacity)
        rates = np.full(n, x_star)
        u_eq = game_utility(rates, 0, capacity)
        for deviation in (0.5, 0.8, 1.2, 2.0):
            trial = rates.copy()
            trial[0] = x_star * deviation
            assert game_utility(trial, 0, capacity) <= u_eq + 1e-6

    def test_under_capacity_wants_to_increase(self):
        """Lemma A.4 case (i): with S < C, increasing raises utility."""
        rates = np.array([10.0, 10.0])
        capacity = 48.0
        low = game_utility(rates, 0, capacity)
        rates[0] = 15.0
        assert game_utility(rates, 0, capacity) > low
