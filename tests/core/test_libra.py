"""Tests for the Libra three-stage controller (Alg. 1)."""

import numpy as np
import pytest

from repro.cca.cubic import Cubic
from repro.core.config import LibraConfig, bbr_config, cubic_config
from repro.core.libra import (EVAL_HIGH, EVAL_LOW, EXPLOIT, EXPLORE,
                              MIN_RATE, LibraController, STARTUP)
from repro.simnet.network import Dumbbell
from repro.simnet.packet import AckSample, IntervalReport, LossSample
from repro.simnet.trace import wired_trace
from repro.units import mbps


def _ack(now, rtt=0.05, sent_time=None, acked=1500):
    return AckSample(now=now, seq=0, rtt=rtt, min_rtt=rtt, srtt=rtt,
                     acked_bytes=acked, delivery_rate=0.0, inflight_bytes=0.0,
                     sent_time=sent_time if sent_time is not None else now - rtt)


def _report(now, duration=0.05, throughput=10e6, acked=10):
    return IntervalReport(now=now, duration=duration, throughput=throughput,
                          send_rate=throughput, avg_rtt=0.05, min_rtt=0.05,
                          rtt_gradient=0.0, loss_rate=0.0,
                          acked_packets=acked, lost_packets=0,
                          sent_packets=acked)


def _libra(config=None, policy=None):
    controller = LibraController(Cubic(), policy=policy,
                                 config=config or LibraConfig())
    controller.start(0.0, 1500)
    return controller


class _StubActor:
    flops_per_forward = 100


class _FaultyPolicy:
    """Raises on the first ``fail_times`` calls, then acts normally."""

    def __init__(self, fail_times=10**9, action=0.1):
        self.fail_times = fail_times
        self.calls = 0
        self.action = action
        self.actor = _StubActor()

    def act(self, state, rng, deterministic=False):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise RuntimeError("policy exploded")
        return np.array([self.action]), None, None


class _NanPolicy:
    def __init__(self):
        self.actor = _StubActor()

    def act(self, state, rng, deterministic=False):
        return np.array([float("nan")]), None, None


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LibraConfig(explore_rtts=0.0)
        with pytest.raises(ValueError):
            LibraConfig(rl_history=0)

    def test_bbr_defaults_longer_stages(self):
        cfg = bbr_config()
        assert cfg.explore_rtts == 3.0
        assert cfg.exploit_rtts == 3.0
        assert cubic_config().explore_rtts == 1.0


class TestStageMachine:
    def test_starts_in_startup(self):
        libra = _libra()
        assert libra.stage == STARTUP

    def test_startup_passes_through_to_classic(self):
        libra = _libra()
        before = libra.classic.cwnd()
        libra.on_ack(_ack(0.05))
        assert libra.classic.cwnd() > before

    def test_full_cycle_progression(self):
        cfg = LibraConfig(startup_rtts=2.0)
        libra = _libra(cfg)
        seen = []
        t = 0.0
        for _ in range(400):
            t += 0.01
            libra.on_ack(_ack(t))
            seen.append(libra.stage)
        for stage in (EXPLORE, EVAL_LOW, EVAL_HIGH, EXPLOIT):
            assert stage in seen
        assert libra.cycles >= 2

    def test_pacing_rate_per_stage(self):
        cfg = LibraConfig(startup_rtts=1.0)
        libra = _libra(cfg)
        t = 0.0
        checked = set()
        for _ in range(400):
            t += 0.01
            libra.on_ack(_ack(t))
            if libra.stage == EVAL_LOW:
                assert libra.pacing_rate() == pytest.approx(libra._eval_lo)
            elif libra.stage == EVAL_HIGH:
                assert libra.pacing_rate() == pytest.approx(libra._eval_hi)
            elif libra.stage == EXPLOIT:
                assert libra.pacing_rate() == pytest.approx(libra.x_prev)
            checked.add(libra.stage)
        assert {EVAL_LOW, EVAL_HIGH, EXPLOIT} <= checked


class TestEvaluationOrder:
    def test_lower_rate_first(self):
        """Sec. 4.1: the lower candidate is always evaluated first."""
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(600):
            t += 0.01
            libra.on_ack(_ack(t))
            if libra.stage in (EVAL_LOW, EVAL_HIGH):
                assert libra._eval_lo <= libra._eval_hi


class TestWinnerSelection:
    def test_winner_has_max_utility(self):
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(800):
            t += 0.01
            libra.on_ack(_ack(t))
        counts = libra.applied_counts
        assert sum(counts.values()) == libra.cycles - 1 or \
               sum(counts.values()) == libra.cycles

    def test_fractions_sum_to_one(self):
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(800):
            t += 0.01
            libra.on_ack(_ack(t))
        fractions = libra.applied_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestNoAckHandling:
    def test_silent_cycle_falls_back_to_x_prev(self):
        """Sec. 3: without feedback the base rate repeats."""
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(50):
            t += 0.01
            libra.on_ack(_ack(t))
        base = libra.x_prev
        # Drive stage transitions with empty interval reports only.
        from repro.simnet.packet import IntervalReport
        for i in range(40):
            t += 0.05
            report = IntervalReport(now=t, duration=0.05, throughput=0.0,
                                    send_rate=0.0, avg_rtt=0.0, min_rtt=0.05,
                                    rtt_gradient=0.0, loss_rate=0.0,
                                    acked_packets=0, lost_packets=0,
                                    sent_packets=0)
            libra.on_interval(report)
        assert libra.x_prev == pytest.approx(base)


class TestNoAckRlHandling:
    def test_silent_interval_keeps_x_rl_and_skips_policy(self):
        """Sec. 3: an exploration MI without ACKs must not move x_rl."""
        policy = _FaultyPolicy(fail_times=0, action=0.5)
        libra = _libra(LibraConfig(startup_rtts=1.0, explore_rtts=1000.0,
                                   watchdog_min=1000.0), policy=policy)
        t = 0.0
        while libra.stage != EXPLORE:
            t += 0.01
            libra.on_ack(_ack(t))
        before = libra.x_rl
        libra.on_interval(_report(t + 0.01, acked=0, throughput=0.0))
        assert libra.x_rl == before
        assert policy.calls == 0
        # a fed interval does move it
        libra.on_interval(_report(t + 0.02))
        assert policy.calls == 1
        assert libra.x_rl != before


def _rl_config(**overrides):
    base = dict(startup_rtts=1.0, explore_rtts=1000.0, watchdog_min=1000.0,
                rl_backoff_initial=1.0, rl_backoff_max=4.0)
    base.update(overrides)
    return LibraConfig(**base)


def _drive_to_explore(libra):
    t = 0.0
    while libra.stage != EXPLORE:
        t += 0.01
        libra.on_ack(_ack(t))
    return t


class TestPolicyFaultGuard:
    def test_exception_disables_rl_arm(self, caplog):
        policy = _FaultyPolicy()
        libra = _libra(_rl_config(), policy=policy)
        t = _drive_to_explore(libra)
        with caplog.at_level("WARNING", logger="repro.core.libra"):
            libra.on_interval(_report(t + 0.01))
        assert libra.rl_fault_count == 1
        assert libra.rl_arm_disabled(t + 0.02)
        assert not libra.rl_arm_disabled(t + 5.0)
        assert any("disabling the RL arm" in r.getMessage()
                   for r in caplog.records)

    def test_disabled_arm_skips_inference(self):
        policy = _FaultyPolicy()
        libra = _libra(_rl_config(), policy=policy)
        t = _drive_to_explore(libra)
        libra.on_interval(_report(t + 0.01))
        for dt in (0.1, 0.3, 0.5):   # all inside the 1 s backoff
            libra.on_interval(_report(t + 0.01 + dt))
        assert policy.calls == 1
        assert libra.rl_fault_count == 1

    def test_backoff_doubles_then_caps(self):
        policy = _FaultyPolicy()
        libra = _libra(_rl_config(), policy=policy)
        t = _drive_to_explore(libra)
        expected = [1.0, 2.0, 4.0, 4.0]   # initial=1, max=4
        now = t
        for backoff in expected:
            now = max(now + 0.01, libra._rl_disabled_until + 0.01)
            libra.on_interval(_report(now))
            assert libra._rl_disabled_until == pytest.approx(now + backoff)
        assert libra.rl_fault_count == len(expected)

    def test_nan_action_treated_as_fault(self):
        libra = _libra(_rl_config(), policy=_NanPolicy())
        t = _drive_to_explore(libra)
        before = libra.x_rl
        libra.on_interval(_report(t + 0.01))
        assert libra.rl_fault_count == 1
        assert libra.x_rl == before

    def test_transient_fault_recovers_after_backoff(self):
        policy = _FaultyPolicy(fail_times=1, action=0.5)
        libra = _libra(_rl_config(), policy=policy)
        t = _drive_to_explore(libra)
        before = libra.x_rl
        libra.on_interval(_report(t + 0.01))
        assert libra.rl_fault_count == 1
        # past the backoff the arm re-enables and inference succeeds
        t2 = libra._rl_disabled_until + 0.01
        libra.on_interval(_report(t2))
        assert policy.calls == 2
        assert libra.x_rl != before
        assert libra._rl_consecutive_faults == 0
        assert libra.meter.counts["nn_forward"] > 0

    def test_without_faults_policy_runs_normally(self):
        policy = _FaultyPolicy(fail_times=0, action=0.25)
        libra = _libra(_rl_config(), policy=policy)
        t = _drive_to_explore(libra)
        libra.on_interval(_report(t + 0.01))
        assert libra.rl_fault_count == 0
        assert not libra.rl_arm_disabled(t + 0.02)


class TestNoAckWatchdog:
    def test_outage_detected_and_recovered(self):
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(100):
            t += 0.01
            libra.on_ack(_ack(t))
        base = libra.x_prev
        assert not libra._outage
        # a long silence (>> watchdog timeout) hits the watchdog
        t_out = t + 2.0
        libra.on_interval(_report(t_out, acked=0, throughput=0.0))
        assert libra._outage
        assert libra.outage_count == 1
        assert libra.pacing_rate() == MIN_RATE
        # more silent intervals neither re-fire nor advance the stages
        stage = libra.stage
        libra.on_interval(_report(t_out + 1.0, acked=0, throughput=0.0))
        assert libra.outage_count == 1 and libra.stage == stage
        # the first ACK after restoration recovers the saved base rate
        libra.on_ack(_ack(t_out + 2.0))
        assert not libra._outage
        assert libra.x_prev == pytest.approx(base)
        assert libra.stage == EXPLORE

    def test_watchdog_quiet_during_startup(self):
        libra = _libra()
        libra.on_interval(_report(5.0, acked=0, throughput=0.0))
        assert not libra._outage
        assert libra.outage_count == 0

    def test_watchdog_respects_min_timeout(self):
        libra = _libra(LibraConfig(startup_rtts=1.0, watchdog_min=10.0))
        t = 0.0
        for _ in range(100):
            t += 0.01
            libra.on_ack(_ack(t))
        libra.on_interval(_report(t + 2.0, acked=0, throughput=0.0))
        assert not libra._outage


class TestLossForwarding:
    def test_losses_reach_classic_in_explore(self):
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(60):
            t += 0.01
            libra.on_ack(_ack(t))
        libra.classic.cwnd_bytes = 100 * 1500
        libra.classic.ssthresh = 1.0
        while libra.stage != EXPLORE:
            t += 0.01
            libra.on_ack(_ack(t))
        before = libra.classic.cwnd_bytes
        libra.on_loss(LossSample(now=t, seq=1, lost_bytes=1500,
                                 sent_time=t - 0.05, inflight_bytes=0.0))
        assert libra.classic.cwnd_bytes < before


class TestIntegration:
    def test_beats_cubic_delay_on_shallow_buffer(self):
        from repro.core.factory import make_c_libra

        def run(controller):
            net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03,
                           seed=1)
            net.add_flow(controller)
            return net.run(10.0)

        libra_run = run(make_c_libra(seed=1))
        cubic_run = run(Cubic())
        assert libra_run.flows[0].avg_rtt_ms < cubic_run.flows[0].avg_rtt_ms
        assert libra_run.utilization > 0.8

    def test_without_policy_still_works(self):
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03, seed=1)
        net.add_flow(LibraController(Cubic(), policy=None))
        result = net.run(8.0)
        assert result.utilization > 0.7

    def test_nn_metered_only_with_policy(self):
        from repro.core.factory import make_c_libra
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03, seed=1)
        controller = make_c_libra(seed=1)
        net.add_flow(controller)
        net.run(6.0)
        assert controller.meter.counts["nn_forward"] > 0

    def test_decision_log_populates(self):
        from repro.core.factory import make_c_libra
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03, seed=1)
        controller = make_c_libra(seed=1)
        net.add_flow(controller)
        net.run(4.0)
        stages = {stage for _, stage, _ in controller.decision_log}
        assert "explore" in stages and "exploit" in stages
