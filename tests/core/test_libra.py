"""Tests for the Libra three-stage controller (Alg. 1)."""

import pytest

from repro.cca.cubic import Cubic
from repro.core.config import LibraConfig, bbr_config, cubic_config
from repro.core.libra import (EVAL_HIGH, EVAL_LOW, EXPLOIT, EXPLORE,
                              LibraController, STARTUP)
from repro.simnet.network import Dumbbell
from repro.simnet.packet import AckSample, LossSample
from repro.simnet.trace import wired_trace
from repro.units import mbps


def _ack(now, rtt=0.05, sent_time=None, acked=1500):
    return AckSample(now=now, seq=0, rtt=rtt, min_rtt=rtt, srtt=rtt,
                     acked_bytes=acked, delivery_rate=0.0, inflight_bytes=0.0,
                     sent_time=sent_time if sent_time is not None else now - rtt)


def _libra(config=None):
    controller = LibraController(Cubic(), policy=None,
                                 config=config or LibraConfig())
    controller.start(0.0, 1500)
    return controller


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LibraConfig(explore_rtts=0.0)
        with pytest.raises(ValueError):
            LibraConfig(rl_history=0)

    def test_bbr_defaults_longer_stages(self):
        cfg = bbr_config()
        assert cfg.explore_rtts == 3.0
        assert cfg.exploit_rtts == 3.0
        assert cubic_config().explore_rtts == 1.0


class TestStageMachine:
    def test_starts_in_startup(self):
        libra = _libra()
        assert libra.stage == STARTUP

    def test_startup_passes_through_to_classic(self):
        libra = _libra()
        before = libra.classic.cwnd()
        libra.on_ack(_ack(0.05))
        assert libra.classic.cwnd() > before

    def test_full_cycle_progression(self):
        cfg = LibraConfig(startup_rtts=2.0)
        libra = _libra(cfg)
        seen = []
        t = 0.0
        for _ in range(400):
            t += 0.01
            libra.on_ack(_ack(t))
            seen.append(libra.stage)
        for stage in (EXPLORE, EVAL_LOW, EVAL_HIGH, EXPLOIT):
            assert stage in seen
        assert libra.cycles >= 2

    def test_pacing_rate_per_stage(self):
        cfg = LibraConfig(startup_rtts=1.0)
        libra = _libra(cfg)
        t = 0.0
        checked = set()
        for _ in range(400):
            t += 0.01
            libra.on_ack(_ack(t))
            if libra.stage == EVAL_LOW:
                assert libra.pacing_rate() == pytest.approx(libra._eval_lo)
            elif libra.stage == EVAL_HIGH:
                assert libra.pacing_rate() == pytest.approx(libra._eval_hi)
            elif libra.stage == EXPLOIT:
                assert libra.pacing_rate() == pytest.approx(libra.x_prev)
            checked.add(libra.stage)
        assert {EVAL_LOW, EVAL_HIGH, EXPLOIT} <= checked


class TestEvaluationOrder:
    def test_lower_rate_first(self):
        """Sec. 4.1: the lower candidate is always evaluated first."""
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(600):
            t += 0.01
            libra.on_ack(_ack(t))
            if libra.stage in (EVAL_LOW, EVAL_HIGH):
                assert libra._eval_lo <= libra._eval_hi


class TestWinnerSelection:
    def test_winner_has_max_utility(self):
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(800):
            t += 0.01
            libra.on_ack(_ack(t))
        counts = libra.applied_counts
        assert sum(counts.values()) == libra.cycles - 1 or \
               sum(counts.values()) == libra.cycles

    def test_fractions_sum_to_one(self):
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(800):
            t += 0.01
            libra.on_ack(_ack(t))
        fractions = libra.applied_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestNoAckHandling:
    def test_silent_cycle_falls_back_to_x_prev(self):
        """Sec. 3: without feedback the base rate repeats."""
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(50):
            t += 0.01
            libra.on_ack(_ack(t))
        base = libra.x_prev
        # Drive stage transitions with empty interval reports only.
        from repro.simnet.packet import IntervalReport
        for i in range(40):
            t += 0.05
            report = IntervalReport(now=t, duration=0.05, throughput=0.0,
                                    send_rate=0.0, avg_rtt=0.0, min_rtt=0.05,
                                    rtt_gradient=0.0, loss_rate=0.0,
                                    acked_packets=0, lost_packets=0,
                                    sent_packets=0)
            libra.on_interval(report)
        assert libra.x_prev == pytest.approx(base)


class TestLossForwarding:
    def test_losses_reach_classic_in_explore(self):
        libra = _libra(LibraConfig(startup_rtts=1.0))
        t = 0.0
        for _ in range(60):
            t += 0.01
            libra.on_ack(_ack(t))
        libra.classic.cwnd_bytes = 100 * 1500
        libra.classic.ssthresh = 1.0
        while libra.stage != EXPLORE:
            t += 0.01
            libra.on_ack(_ack(t))
        before = libra.classic.cwnd_bytes
        libra.on_loss(LossSample(now=t, seq=1, lost_bytes=1500,
                                 sent_time=t - 0.05, inflight_bytes=0.0))
        assert libra.classic.cwnd_bytes < before


class TestIntegration:
    def test_beats_cubic_delay_on_shallow_buffer(self):
        from repro.core.factory import make_c_libra

        def run(controller):
            net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03,
                           seed=1)
            net.add_flow(controller)
            return net.run(10.0)

        libra_run = run(make_c_libra(seed=1))
        cubic_run = run(Cubic())
        assert libra_run.flows[0].avg_rtt_ms < cubic_run.flows[0].avg_rtt_ms
        assert libra_run.utilization > 0.8

    def test_without_policy_still_works(self):
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03, seed=1)
        net.add_flow(LibraController(Cubic(), policy=None))
        result = net.run(8.0)
        assert result.utilization > 0.7

    def test_nn_metered_only_with_policy(self):
        from repro.core.factory import make_c_libra
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03, seed=1)
        controller = make_c_libra(seed=1)
        net.add_flow(controller)
        net.run(6.0)
        assert controller.meter.counts["nn_forward"] > 0

    def test_decision_log_populates(self):
        from repro.core.factory import make_c_libra
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03, seed=1)
        controller = make_c_libra(seed=1)
        net.add_flow(controller)
        net.run(4.0)
        stages = {stage for _, stage, _ in controller.decision_log}
        assert "explore" in stages and "exploit" in stages
