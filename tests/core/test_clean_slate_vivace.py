"""Tests for Clean-Slate Libra and the Vivace state machine details."""

import pytest

from repro.assets import load_policy
from repro.core.clean_slate import CleanSlateLibra, _HoldRate
from repro.learning.vivace import (_MOVING, _PROBE_DOWN, _PROBE_UP,
                                   _STARTING, Vivace)
from repro.simnet.network import Dumbbell
from repro.simnet.packet import AckSample
from repro.simnet.trace import wired_trace


def _ack(now, rtt=0.05, min_rtt=0.05, srtt=0.05):
    return AckSample(now=now, seq=0, rtt=rtt, min_rtt=min_rtt, srtt=srtt,
                     acked_bytes=1500, delivery_rate=0.0, inflight_bytes=0.0,
                     sent_time=now - rtt)


class TestHoldRate:
    def test_doubles_per_rtt_in_startup(self):
        hold = _HoldRate(1e6)
        hold.on_ack(_ack(0.06))
        assert hold.rate_estimate(0.05) == 2e6
        hold.on_ack(_ack(0.07))  # same RTT: no second doubling
        assert hold.rate_estimate(0.05) == 2e6

    def test_delay_inflation_stops_startup(self):
        hold = _HoldRate(1e6)
        hold.on_ack(_ack(0.06, rtt=0.1, min_rtt=0.05))  # 2x min rtt
        rate = hold.rate_estimate(0.05)
        hold.on_ack(_ack(0.2))
        assert hold.rate_estimate(0.05) == rate

    def test_loss_stops_startup(self):
        hold = _HoldRate(1e6)
        hold.on_loss(None)
        hold.on_ack(_ack(0.06))
        assert hold.rate_estimate(0.05) == 1e6

    def test_adopt_rate_holds(self):
        hold = _HoldRate(1e6)
        hold.adopt_rate(7e6, 0.05)
        assert hold.rate_estimate(0.05) == 7e6


class TestCleanSlate:
    def test_runs_end_to_end(self):
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03,
                       seed=1)
        controller = CleanSlateLibra(load_policy("libra"), seed=1)
        net.add_flow(controller)
        result = net.run(8.0)
        assert result.utilization > 0.4
        assert controller.cycles > 5

    def test_name(self):
        assert CleanSlateLibra(None).name == "cl-libra"


class TestVivaceStateMachine:
    def test_starting_exits_on_utility_drop(self):
        v = Vivace()
        v._last_utility = 100.0
        v._consume(_STARTING, 8e6, 50.0)  # utility dropped
        assert v.state == _PROBE_UP
        assert v.base_rate == pytest.approx(4e6)

    def test_probe_pair_moves_towards_gradient(self):
        v = Vivace()
        v.state = _MOVING
        v.base_rate = 10e6
        v._probe_results = {}
        v._consume(_PROBE_UP, 10.5e6, 100.0)
        v._consume(_PROBE_DOWN, 9.5e6, 50.0)  # up better -> increase
        assert v.base_rate > 10e6

    def test_negative_gradient_decreases(self):
        v = Vivace()
        v.state = _MOVING
        v.base_rate = 10e6
        v._consume(_PROBE_UP, 10.5e6, 50.0)
        v._consume(_PROBE_DOWN, 9.5e6, 100.0)  # down better -> decrease
        assert v.base_rate < 10e6

    def test_amplifier_grows_with_consistent_direction(self):
        v = Vivace()
        v.base_rate = 10e6
        for _ in range(4):
            v._consume(_PROBE_UP, v.base_rate * 1.05, 100.0)
            v._consume(_PROBE_DOWN, v.base_rate * 0.95, 50.0)
        assert v._amplifier >= 2

    def test_step_bounded_by_omega(self):
        v = Vivace()
        v.base_rate = 10e6
        v._consume(_PROBE_UP, 10.5e6, 1e9)   # absurd gradient
        v._consume(_PROBE_DOWN, 9.5e6, 0.0)
        # bounded by (OMEGA_BASE) * base on the first move
        assert v.base_rate <= 10e6 * 1.06
