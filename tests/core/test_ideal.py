"""Tests for utility time series and the offline ideal combiner."""

import numpy as np
import pytest

from repro.core.ideal import ideal_series, normalize_utilities, utility_series
from repro.simnet.endpoint import FlowStats


def _stats(delivered_per_bin, rtt_samples=None, losses_per_bin=None,
           bin_width=0.25):
    stats = FlowStats(flow_id=0, start_time=0.0,
                      end_time=len(delivered_per_bin) * bin_width)
    stats.bin_width = bin_width
    stats.delivered_bins = list(delivered_per_bin)
    stats.lost_bins = list(losses_per_bin or [])
    stats.rtt_samples = rtt_samples or []
    stats.delivered_bytes = sum(delivered_per_bin)
    return stats


def test_utility_series_length():
    stats = _stats([30000] * 16)  # 4 seconds at 0.25s bins
    times, values = utility_series(stats, window=1.0)
    assert len(times) == len(values) == 4


def test_higher_throughput_higher_utility():
    low = _stats([10000] * 8)
    high = _stats([40000] * 8)
    _, u_low = utility_series(low, window=1.0)
    _, u_high = utility_series(high, window=1.0)
    assert np.all(u_high > u_low)


def test_loss_lowers_utility():
    clean = _stats([40000] * 8)
    lossy = _stats([40000] * 8, losses_per_bin=[20000] * 8)
    _, u_clean = utility_series(clean, window=1.0)
    _, u_lossy = utility_series(lossy, window=1.0)
    assert np.all(u_lossy < u_clean)


def test_rising_rtt_lowers_utility():
    flat = _stats([40000] * 8,
                  rtt_samples=[(t * 0.1, 0.05) for t in range(20)])
    rising = _stats([40000] * 8,
                    rtt_samples=[(t * 0.1, 0.05 + 0.05 * t) for t in range(20)])
    _, u_flat = utility_series(flat, window=2.0)
    _, u_rising = utility_series(rising, window=2.0)
    assert u_rising[0] < u_flat[0]


def test_ideal_is_pointwise_max():
    a = _stats([10000] * 8)
    b = _stats([40000] * 8)
    _, u_a = utility_series(a, window=1.0)
    _, u_b = utility_series(b, window=1.0)
    _, ideal = ideal_series([a, b], window=1.0)
    assert np.allclose(ideal, np.maximum(u_a, u_b))


def test_ideal_requires_components():
    with pytest.raises(ValueError):
        ideal_series([])


def test_normalize_utilities_joint_range():
    a = np.array([0.0, 5.0])
    b = np.array([10.0, 2.5])
    na, nb = normalize_utilities(a, b)
    merged = np.concatenate([na, nb])
    assert merged.min() == 0.0
    assert merged.max() == 1.0
    assert na[1] == pytest.approx(0.5)


def test_window_validation():
    with pytest.raises(ValueError):
        utility_series(_stats([1000] * 4), window=0.0)
