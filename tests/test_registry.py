"""Tests for the controller registry and package API."""

import pytest

import repro
from repro.registry import available_ccas, make_controller


def test_all_paper_ccas_available():
    names = available_ccas()
    for expected in ("cubic", "bbr", "copa", "sprout", "remy", "indigo",
                     "aurora", "vivace", "proteus", "orca", "modified-rl",
                     "c-libra", "b-libra", "cl-libra"):
        assert expected in names


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        make_controller("quic-magic")


def test_case_insensitive():
    assert make_controller("CUBIC").name == "cubic"


def test_fresh_instances():
    a = make_controller("cubic")
    b = make_controller("cubic")
    assert a is not b


def test_libra_preset_kwarg():
    c = make_controller("c-libra", utility_preset="la-1")
    assert c.config.utility.beta == 1800.0


def test_libra_custom_config_kwarg():
    from repro.core.config import LibraConfig

    cfg = LibraConfig(th1_fraction=0.2)
    c = make_controller("c-libra", config=cfg)
    assert c.config.th1_fraction == 0.2


def test_b_libra_uses_bbr():
    from repro.cca.bbr import Bbr

    c = make_controller("b-libra")
    assert isinstance(c.classic, Bbr)
    assert c.config.explore_rtts == 3.0


def test_package_exports():
    assert callable(repro.make_controller)
    assert repro.__version__


def test_every_registered_cca_instantiates():
    for name in available_ccas():
        controller = make_controller(name, seed=1)
        controller.start(0.0, 1500)
