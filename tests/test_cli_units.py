"""Tests for the CLI entry point, unit helpers, and the env bridge."""

import pytest

from repro.__main__ import main
from repro.env.bridge import measurement_from_report
from repro.simnet.packet import IntervalReport
from repro.units import (bdp_bytes, bits_to_bytes, bytes_to_bits, mbps, ms,
                         to_mbps, to_ms)


class TestUnits:
    def test_mbps_roundtrip(self):
        assert to_mbps(mbps(48.0)) == pytest.approx(48.0)

    def test_ms_roundtrip(self):
        assert to_ms(ms(30.0)) == pytest.approx(30.0)

    def test_bits_bytes(self):
        assert bytes_to_bits(100) == 800
        assert bits_to_bytes(800) == 100

    def test_bdp(self):
        # 48 Mbps * 100 ms = 600 KB
        assert bdp_bytes(mbps(48), ms(100)) == pytest.approx(600_000)


class TestBridge:
    def test_measurement_fields(self):
        report = IntervalReport(now=1.0, duration=0.1, throughput=10e6,
                                send_rate=12e6, avg_rtt=0.06, min_rtt=0.05,
                                rtt_gradient=0.1, loss_rate=0.02,
                                acked_packets=50, lost_packets=1,
                                sent_packets=51)
        m = measurement_from_report(report, rate_bps=15e6, min_rtt=0.05)
        assert m.throughput == 10e6
        assert m.rate == 15e6
        assert m.loss_rate == 0.02
        assert m.ack_gap_ewma == pytest.approx(0.1 / 50)

    def test_zero_ack_fallbacks(self):
        report = IntervalReport(now=1.0, duration=0.1, throughput=0.0,
                                send_rate=0.0, avg_rtt=0.0, min_rtt=0.0,
                                rtt_gradient=0.0, loss_rate=0.0,
                                acked_packets=0, lost_packets=0,
                                sent_packets=0)
        m = measurement_from_report(report, rate_bps=1e6, min_rtt=0.05)
        assert m.avg_rtt == 0.05  # falls back to min_rtt


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "c-libra" in out and "fig7" in out

    def test_run_single_flow(self, capsys):
        code = main(["run", "cubic", "--bw", "12", "--rtt", "30",
                     "--duration", "3"])
        assert code == 0
        assert "throughput=" in capsys.readouterr().out

    def test_run_with_codel(self, capsys):
        code = main(["run", "cubic", "--bw", "12", "--rtt", "30",
                     "--duration", "3", "--aqm", "codel"])
        assert code == 0

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
