"""Serial vs parallel vs cached grids must agree bit-for-bit."""

import pytest

from repro import parallel
from repro.experiments.harness import mean_metrics, run_grid, run_seeds
from repro.parallel import ResultCache, has_fork, single_flow_job
from repro.scenarios.presets import WIRED, buffer_scenario

needs_fork = pytest.mark.skipif(not has_fork(),
                                reason="platform lacks fork start method")


def _grid_jobs():
    return [single_flow_job(cca, scenario, seed=seed, duration=2.0)
            for cca in ("cubic", "bbr")
            for scenario in (WIRED["wired-24"], buffer_scenario(30_000))
            for seed in (1, 2)]


def _fingerprint(summaries):
    return [(s.cca, s.scenario, s.utilization, s.throughput_mbps,
             s.avg_rtt_ms, s.p95_rtt_ms, s.loss_rate) for s in summaries]


class TestGridDeterminism:
    def test_serial_matches_run_seeds(self):
        """run_grid through the executor equals the plain per-seed path."""
        summaries = run_grid([
            single_flow_job("cubic", WIRED["wired-24"], seed=s, duration=2.0)
            for s in (1, 2)])
        direct = run_seeds("cubic", WIRED["wired-24"], (1, 2), duration=2.0)
        assert _fingerprint(summaries) == _fingerprint(direct)
        assert mean_metrics(summaries) == mean_metrics(direct)

    @needs_fork
    def test_parallel_matches_serial(self):
        jobs = _grid_jobs()
        serial = run_grid(jobs, workers=1)
        parallel_ = run_grid(jobs, workers=2)
        assert _fingerprint(serial) == _fingerprint(parallel_)

    @needs_fork
    def test_cached_rerun_matches_and_hits(self, tmp_path):
        jobs = _grid_jobs()
        cache = ResultCache(root=str(tmp_path))
        first = run_grid(jobs, workers=2, cache=cache)
        assert cache.hits == 0
        second = run_grid(jobs, workers=1, cache=cache)
        assert cache.hits == len(jobs)
        assert _fingerprint(first) == _fingerprint(second)


class TestExecutionConfig:
    def test_defaults_are_conservative(self):
        config = parallel.ExecutionConfig()
        assert config.jobs == 1
        assert config.cache is False
        assert config.progress is False

    def test_set_and_restore(self):
        original = parallel.get_execution_config()
        try:
            updated = parallel.set_execution_config(jobs=4, cache=True)
            assert updated.jobs == 4
            assert parallel.get_execution_config().cache is True
        finally:
            parallel.set_execution_config(**vars(original))

    def test_run_grid_reads_global_config(self, tmp_path):
        original = parallel.get_execution_config()
        try:
            parallel.set_execution_config(jobs=1, cache=True,
                                          cache_dir=str(tmp_path))
            jobs = [single_flow_job("cubic", WIRED["wired-24"], seed=1,
                                    duration=1.0)]
            run_grid(jobs)
            rerun = run_grid(jobs)
            assert (tmp_path / next(tmp_path.iterdir()).name).exists()
            assert rerun[0].utilization >= 0.0
        finally:
            parallel.set_execution_config(**vars(original))
