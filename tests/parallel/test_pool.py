"""Worker-pool behavior: ordering, fallback, timeout, retry, crash."""

import os
import time
from dataclasses import dataclass, field

import pytest

from repro.parallel import (FailedRun, FlowSpec, Job, JobFailedError,
                            ResultCache, ProgressReporter, has_fork,
                            resolve_workers, run_jobs, single_flow_job)
from repro.scenarios.presets import WIRED
from repro.simnet.network import RunResult

needs_fork = pytest.mark.skipif(not has_fork(),
                                reason="platform lacks fork start method")


def _jobs(n=3, duration=1.0):
    ccas = ("cubic", "vegas", "bbr", "westwood", "reno")
    return [single_flow_job(ccas[i % len(ccas)], WIRED["wired-24"],
                            seed=i + 1, duration=duration) for i in range(n)]


def _dummy_result() -> RunResult:
    return RunResult(duration=1.0, flows=[], link_served_bytes=0.0,
                     link_capacity_bytes=1.0, link_dropped_packets=0,
                     link_random_drops=0)


@dataclass(frozen=True)
class _HangingJob(Job):
    """Never returns; exercises the per-job timeout."""

    def run(self) -> RunResult:
        time.sleep(60.0)
        return _dummy_result()  # pragma: no cover


@dataclass(frozen=True)
class _CrashingJob(Job):
    """Dies without delivering a result; always."""

    def run(self) -> RunResult:
        os._exit(13)


@dataclass(frozen=True)
class _FlakyJob(Job):
    """Crashes until ``marker`` exists, then succeeds — retry succeeds."""

    marker: str = ""

    def run(self) -> RunResult:
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write("crashed once")
            os._exit(13)
        return _dummy_result()


@dataclass(frozen=True)
class _RaisingJob(Job):
    """Raises a deterministic Python error — must not be retried."""

    def run(self) -> RunResult:
        raise ValueError("deterministic failure")


def _special(job_cls, **extra) -> Job:
    return job_cls(scenario=WIRED["wired-24"],
                   flows=(FlowSpec.make("cubic"),), seed=1, duration=1.0,
                   **extra)


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 1

    def test_zero_is_cpu_count(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestSerialPath:
    def test_results_in_input_order(self):
        jobs = _jobs(3)
        results = run_jobs(jobs, workers=1)
        assert len(results) == 3
        for job, res in zip(jobs, results):
            assert res.result.flows[0].flow_id == 0
            assert res.cached is False
            assert res.elapsed > 0.0

    def test_serial_uses_cache(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        jobs = _jobs(2)
        first = run_jobs(jobs, workers=1, cache=cache)
        second = run_jobs(jobs, workers=1, cache=cache)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        assert second[0].result.flows[0].throughput_mbps == \
            first[0].result.flows[0].throughput_mbps

    def test_progress_counts(self):
        progress = ProgressReporter(3, enabled=False)
        run_jobs(_jobs(3), workers=1, progress=progress)
        assert progress.done == 3
        assert progress.executed == 3
        assert progress.cache_hits == 0


@needs_fork
class TestParallelPath:
    def test_matches_serial_exactly(self):
        jobs = _jobs(4)
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=2)
        for a, b in zip(serial, parallel):
            assert a.result.utilization == b.result.utilization
            assert a.result.flows[0].throughput_mbps == \
                b.result.flows[0].throughput_mbps
            assert a.result.flows[0].rtt_sum == b.result.flows[0].rtt_sum

    def test_timeout_kills_and_fails_after_retries(self):
        jobs = [_special(_HangingJob)]
        t0 = time.monotonic()
        with pytest.raises(JobFailedError, match="timed out"):
            run_jobs(jobs, workers=2, timeout=1.0, retries=1)
        assert time.monotonic() - t0 < 20.0  # two 1 s attempts, not 60 s

    def test_crash_exhausts_retries(self):
        with pytest.raises(JobFailedError, match="crashed"):
            run_jobs([_special(_CrashingJob)], workers=2, retries=1)

    def test_crash_retry_succeeds(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        jobs = [_special(_FlakyJob, marker=marker)]
        results = run_jobs(jobs, workers=2, retries=1)
        assert results[0].retries == 1
        assert results[0].result.duration == 1.0

    def test_deterministic_exception_not_retried(self, tmp_path):
        with pytest.raises(JobFailedError, match="deterministic failure"):
            run_jobs([_special(_RaisingJob)], workers=2, retries=5)

    def test_healthy_jobs_finish_alongside_timeout(self):
        jobs = _jobs(2) + [_special(_HangingJob)]
        with pytest.raises(JobFailedError, match="timed out"):
            run_jobs(jobs, workers=2, timeout=2.0, retries=0)

    def test_parallel_populates_cache_for_serial(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        jobs = _jobs(3)
        run_jobs(jobs, workers=2, cache=cache)
        again = run_jobs(jobs, workers=1, cache=cache)
        assert all(r.cached for r in again)


class TestErrorCollection:
    """``on_error="collect"`` converts exceptions into FailedRun slots."""

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_jobs(_jobs(1), workers=1, on_error="ignore")

    def test_serial_collects_failed_run(self):
        jobs = [_special(_RaisingJob)] + _jobs(1)
        results = run_jobs(jobs, workers=1, on_error="collect")
        assert isinstance(results[0].failure, FailedRun)
        assert results[0].failure.failed
        assert results[0].result is None
        assert "deterministic failure" in results[0].failure.error
        assert "ValueError" in results[0].failure.traceback
        assert results[1].failure is None and results[1].result is not None

    def test_serial_raise_is_default(self):
        with pytest.raises(ValueError, match="deterministic failure"):
            run_jobs([_special(_RaisingJob)], workers=1)

    def test_failed_run_identifies_the_job(self):
        results = run_jobs([_special(_RaisingJob)], workers=1,
                           on_error="collect")
        failure = results[0].failure
        assert failure.cca == "cubic"
        assert failure.scenario == "wired-24"
        assert failure.seed == 1
        assert "FAILED" in str(failure)

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        jobs = [_special(_RaisingJob)]
        run_jobs(jobs, workers=1, cache=cache, on_error="collect")
        assert cache.get(jobs[0]) is None

    def test_progress_counts_failures(self):
        progress = ProgressReporter(2, enabled=False)
        run_jobs([_special(_RaisingJob)] + _jobs(1), workers=1,
                 on_error="collect", progress=progress)
        assert progress.failures == 1
        assert "FAILED" in progress.render()
        assert "FAILED" in progress.summary()

    @needs_fork
    def test_parallel_collects_failed_run(self):
        jobs = _jobs(2) + [_special(_RaisingJob)]
        results = run_jobs(jobs, workers=2, on_error="collect")
        assert results[0].failure is None and results[1].failure is None
        assert isinstance(results[2].failure, FailedRun)
        assert "deterministic failure" in results[2].failure.error

    @needs_fork
    def test_parallel_raise_still_raises(self):
        with pytest.raises(JobFailedError, match="deterministic failure"):
            run_jobs([_special(_RaisingJob)], workers=2, on_error="raise")


@dataclass(frozen=True)
class _SquareTask:
    """A generic (non-Job) task, as the training pipeline submits them."""

    value: int

    @property
    def label(self) -> str:
        return f"square {self.value}"

    def run(self) -> int:
        return self.value * self.value


@dataclass(frozen=True)
class _FailingTask:
    value: int = 0

    def run(self) -> int:
        raise RuntimeError("task failure")


class TestRunTasks:
    """run_tasks: the pool's generic-task front door (no Job fields)."""

    def test_serial_preserves_order(self):
        from repro.parallel import run_tasks

        tasks = [_SquareTask(v) for v in (3, 1, 2)]
        assert run_tasks(tasks, workers=1) == [9, 1, 4]

    @needs_fork
    def test_parallel_matches_serial(self):
        from repro.parallel import run_tasks

        tasks = [_SquareTask(v) for v in range(5)]
        assert run_tasks(tasks, workers=2) == \
            run_tasks(tasks, workers=1)

    def test_serial_failure_propagates_raw(self):
        from repro.parallel import run_tasks

        with pytest.raises(RuntimeError, match="task failure"):
            run_tasks([_FailingTask()], workers=1)

    @needs_fork
    def test_parallel_failure_reports_label_not_flow_fields(self):
        """FailedRun.from_job must cope with tasks lacking flows/scenario."""
        from repro.parallel import run_tasks

        with pytest.raises(JobFailedError, match="task failure"):
            run_tasks([_FailingTask()], workers=2, retries=0)
