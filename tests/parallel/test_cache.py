"""Cache key stability and hit/miss behavior of the result cache."""

import os
import pickle

import pytest

from repro.parallel import (ResultCache, canonical_spec, execute, job_key,
                            single_flow_job)
from repro.parallel.cache import code_salt, default_cache_dir
from repro.scenarios.presets import WIRED, buffer_scenario, stress_scenario
from repro.simnet.faults import Blackout, FaultSchedule


def _job(cca="cubic", seed=1, duration=2.0, **kwargs):
    return single_flow_job(cca, WIRED["wired-24"], seed=seed,
                           duration=duration, **kwargs)


class TestJobKey:
    def test_same_spec_same_key(self):
        assert job_key(_job()) == job_key(_job())

    def test_key_is_hex_sha256(self):
        key = job_key(_job())
        assert len(key) == 64
        int(key, 16)

    def test_key_differs_by_cca(self):
        assert job_key(_job("cubic")) != job_key(_job("bbr"))

    def test_key_differs_by_seed(self):
        assert job_key(_job(seed=1)) != job_key(_job(seed=2))

    def test_key_differs_by_duration(self):
        assert job_key(_job(duration=2.0)) != job_key(_job(duration=3.0))

    def test_key_differs_by_scenario(self):
        a = single_flow_job("cubic", buffer_scenario(10_000), seed=1)
        b = single_flow_job("cubic", buffer_scenario(30_000), seed=1)
        assert job_key(a) != job_key(b)

    def test_key_differs_by_cca_kwargs(self):
        from repro.core.config import LibraConfig

        a = _job("c-libra", config=LibraConfig(th1_fraction=0.1))
        b = _job("c-libra", config=LibraConfig(th1_fraction=0.2))
        assert job_key(a) != job_key(b)

    def test_same_fault_profile_same_key(self):
        a = single_flow_job("cubic", stress_scenario("blackout"), seed=1)
        b = single_flow_job("cubic", stress_scenario("blackout"), seed=1)
        assert job_key(a) == job_key(b)

    def test_key_differs_by_fault_profile(self):
        keys = {job_key(single_flow_job("cubic", stress_scenario(p), seed=1))
                for p in ("clean", "blackout", "burst-loss", "pathological")}
        assert len(keys) == 4

    def test_key_differs_by_fault_parameters(self):
        early = FaultSchedule(name="b", blackouts=(Blackout(3.0, 1.0),))
        late = FaultSchedule(name="b", blackouts=(Blackout(5.0, 1.0),))
        a = single_flow_job("cubic", stress_scenario(early), seed=1)
        b = single_flow_job("cubic", stress_scenario(late), seed=1)
        assert job_key(a) != job_key(b)

    def test_key_differs_by_fault_seed(self):
        a = stress_scenario(FaultSchedule(name="s",
                                          blackouts=(Blackout(3.0, 1.0),),
                                          seed=1))
        b = stress_scenario(FaultSchedule(name="s",
                                          blackouts=(Blackout(3.0, 1.0),),
                                          seed=2))
        assert job_key(single_flow_job("cubic", a, seed=1)) != \
            job_key(single_flow_job("cubic", b, seed=1))

    def test_key_differs_by_salt(self):
        assert job_key(_job(), salt="a") != job_key(_job(), salt="b")

    def test_canonical_spec_is_json_stable(self):
        import json

        doc = json.dumps(canonical_spec(_job()), sort_keys=True)
        assert json.dumps(canonical_spec(_job()), sort_keys=True) == doc


class TestCodeSalt:
    def test_deterministic_within_process(self):
        assert code_salt() == code_salt(fresh=True)


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        job = _job()
        assert cache.get(job) is None
        result = execute(job)
        cache.put(job, result)
        hit = cache.get(job)
        assert hit is not None
        assert hit.cached is True
        assert hit.result.flows[0].throughput_mbps == \
            result.result.flows[0].throughput_mbps
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        job = _job()
        cache.put(job, execute(job))
        path = cache._path(cache.key(job))
        with open(path, "wb") as fh:
            fh.write(pickle.dumps({"not": "a JobResult"})[:10])
        assert cache.get(job) is None
        assert not os.path.exists(path)

    def test_wrong_type_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        job = _job()
        path = cache._path(cache.key(job))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump("not a JobResult", fh)
        assert cache.get(job) is None

    def test_env_var_overrides_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == str(tmp_path / "custom")
        assert ResultCache().root == str(tmp_path / "custom")

    def test_different_salt_does_not_hit(self, tmp_path):
        job = _job()
        writer = ResultCache(root=str(tmp_path), salt="code-v1")
        writer.put(job, execute(job))
        reader = ResultCache(root=str(tmp_path), salt="code-v2")
        assert reader.get(job) is None
