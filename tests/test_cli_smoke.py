"""CLI smoke tests: list / run / trace through the ``__main__`` entry point."""

import os
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.telemetry import validate_jsonl

FLOW_ARGS = ["--bw", "12", "--rtt", "30", "--duration", "2", "--seed", "1"]


class TestList:
    def test_lists_ccas_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cubic" in out and "c-libra" in out
        assert "fig7" in out and "stress" in out

    def test_python_dash_m_entry_point(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run([sys.executable, "-m", "repro", "list"],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0
        assert "CCAs:" in proc.stdout


class TestRun:
    def test_headline_line(self, capsys):
        assert main(["run", "cubic", *FLOW_ARGS]) == 0
        out = capsys.readouterr().out
        assert "cubic: throughput=" in out and "Mbps" in out


class TestTrace:
    def test_jsonl_export_validates(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        assert main(["trace", "cubic", *FLOW_ARGS,
                     "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "telemetry schema v" in printed
        assert "flow0.rate" in printed
        info = validate_jsonl(out_path)
        assert info["samples"] > 0 and info["events"] > 0
        assert "flow0.rate" in info["series"]

    def test_csv_export(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        assert main(["trace", "cubic", *FLOW_ARGS, "--format", "csv",
                     "--out", str(out_path)]) == 0
        header = out_path.read_text().splitlines()[0]
        assert header == "t,record,channel,value,fields"
        assert "csv records" in capsys.readouterr().out

    def test_libra_trace_carries_stage_events(self, tmp_path, capsys):
        out_path = tmp_path / "libra.jsonl"
        assert main(["trace", "c-libra", "--lte", "stationary", "--duration",
                     "4", "--seed", "1", "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "libra.stage" in printed and "libra.verdict" in printed
        info = validate_jsonl(out_path)
        assert "libra.stage" in info["event_kinds"]

    def test_trace_without_out_only_prints(self, capsys):
        assert main(["trace", "cubic", *FLOW_ARGS, "--tail", "0"]) == 0
        out = capsys.readouterr().out
        assert "wrote" not in out and "series channels:" in out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")


class TestServeSend:
    """Real-socket path: a ``repro serve`` subprocess on an ephemeral
    port, driven by in-process ``repro send`` invocations."""

    @pytest.fixture()
    def server(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--one", "--json",
             "--quiet"],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            line = proc.stdout.readline()
            assert line.startswith("netio: listening on "), line
            port = int(line.rsplit(":", 1)[1])
            yield proc, port
        finally:
            if proc.poll() is None:
                proc.terminate()
            proc.wait(timeout=10)

    def test_transfer_and_telemetry_roundtrip(self, server, tmp_path,
                                              capsys):
        proc, port = server
        out_path = tmp_path / "netio.jsonl"
        rc = main(["send", f"127.0.0.1:{port}", "--cca", "cubic",
                   "--bytes", "65536", "--timeout", "30",
                   "--out", str(out_path)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "cubic: 65536 bytes" in printed
        assert "jsonl records" in printed
        info = validate_jsonl(out_path)
        assert info["samples"] > 0
        assert "flow0.rate" in info["series"]
        assert "netio.handshake" in info["event_kinds"]
        assert proc.wait(timeout=10) == 0
        summary = proc.stdout.readline()
        assert '"complete": true' in summary

    def test_send_json_summary_under_impairment(self, server, capsys):
        import json

        _, port = server
        rc = main(["send", f"127.0.0.1:{port}", "--cca", "libra:cubic",
                   "--bytes", "131072", "--loss", "0.02", "--delay", "10",
                   "--impair-seed", "1", "--timeout", "30", "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out.splitlines()[0])
        assert summary["cca"] == "libra:cubic"
        assert summary["bytes_acked"] == 131072
        assert summary["retransmissions"] >= 1
        assert summary["impairment"]["data_drops"] >= 1

    def test_send_rejects_bad_target(self, capsys):
        assert main(["send", "not-a-target"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_list_advertises_netio_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Commands:" in out
        assert "serve" in out and "send" in out
        assert "chaos" in out and "soak" in out

    def test_serve_drains_gracefully_on_sigterm(self):
        import signal

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve"],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            line = proc.stdout.readline()
            assert line.startswith("netio: listening on "), line
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=10) == 0
            assert "netio: drained" in proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_serve_rejects_bad_limits(self, capsys):
        assert main(["serve", "--max-sessions", "0"]) == 2
        assert "bad server limits" in capsys.readouterr().err


class TestChaosCLI:
    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2
        assert "unknown chaos scenario" in capsys.readouterr().err


class TestExperiment:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["experiment", "fig999"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, capsys):
        assert main(["experiment", "fig7", "--jobs", "-1"]) == 2

    def test_unknown_cca_raises(self):
        with pytest.raises(KeyError):
            main(["run", "no-such-cca", *FLOW_ARGS])
