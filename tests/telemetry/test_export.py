"""JSONL/CSV exporters and schema validation."""

import csv
import io
import json

import numpy as np
import pytest

from repro.telemetry import (Event, FlowTelemetry, SCHEMA_VERSION,
                             TelemetrySchemaError, format_summary,
                             validate_jsonl, write_csv, write_jsonl)


def _artifact() -> FlowTelemetry:
    times = np.array([0.0, 1.0, 2.0])
    values = np.array([10.0, 20.0, 30.0])
    return FlowTelemetry(
        schema_version=SCHEMA_VERSION, series={"s": (times, values)},
        events={"k": (Event(0.5, "k", {"n": 1, "label": "x"}),)},
        meta={"duration": 2.0})


class TestJsonl:
    def test_write_and_validate_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = write_jsonl(_artifact(), path)
        assert lines == 5  # header + 3 samples + 1 event
        info = validate_jsonl(path)
        assert info == {"samples": 3, "events": 1,
                        "schema_version": SCHEMA_VERSION, "series": ["s"],
                        "event_kinds": ["k"]}

    def test_header_is_first_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(_artifact(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "header"
        assert header["schema_version"] == SCHEMA_VERSION
        assert header["meta"]["duration"] == 2.0

    def test_file_like_objects(self):
        buf = io.StringIO()
        write_jsonl(_artifact(), buf)
        buf.seek(0)
        assert validate_jsonl(buf)["samples"] == 3

    def test_rejects_empty_file(self):
        with pytest.raises(TelemetrySchemaError, match="empty"):
            validate_jsonl(io.StringIO(""))

    def test_rejects_missing_header(self):
        line = json.dumps({"type": "sample", "channel": "s", "t": 0.0, "v": 1})
        with pytest.raises(TelemetrySchemaError, match="header"):
            validate_jsonl(io.StringIO(line + "\n"))

    def test_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(_artifact(), path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = SCHEMA_VERSION + 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(TelemetrySchemaError, match="schema_version"):
            validate_jsonl(path)

    def test_rejects_undeclared_channel(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(_artifact(), path)
        with open(path, "a") as fh:
            fh.write(json.dumps({"type": "sample", "channel": "ghost",
                                 "t": 0.0, "v": 1.0}) + "\n")
        with pytest.raises(TelemetrySchemaError, match="undeclared channel"):
            validate_jsonl(path)

    def test_rejects_invalid_json(self):
        header = json.dumps({"type": "header",
                             "schema_version": SCHEMA_VERSION,
                             "series": [], "events": [], "meta": {}})
        with pytest.raises(TelemetrySchemaError, match="invalid JSON"):
            validate_jsonl(io.StringIO(header + "\nnot json\n"))

    def test_rejects_unknown_record_type(self):
        header = json.dumps({"type": "header",
                             "schema_version": SCHEMA_VERSION,
                             "series": [], "events": [], "meta": {}})
        bad = json.dumps({"type": "mystery"})
        with pytest.raises(TelemetrySchemaError, match="unknown record"):
            validate_jsonl(io.StringIO(header + "\n" + bad + "\n"))


class TestCsv:
    def test_long_format(self, tmp_path):
        path = tmp_path / "trace.csv"
        rows = write_csv(_artifact(), path)
        assert rows == 4
        with open(path) as fh:
            parsed = list(csv.reader(fh))
        assert parsed[0] == ["t", "record", "channel", "value", "fields"]
        assert len(parsed) == 5
        sample = parsed[1]
        assert sample[1] == "sample" and sample[2] == "s"
        assert float(sample[3]) == 10.0
        event = parsed[4]
        assert event[1] == "event" and event[2] == "k"
        assert json.loads(event[4]) == {"n": 1, "label": "x"}


class TestFormatSummary:
    def test_mentions_channels_and_tail(self):
        text = format_summary(_artifact(), tail=5)
        assert "schema v1" in text
        assert "s" in text and "k" in text
        assert "3 samples / 1 events" in text
        assert "last 1 events" in text
