"""FlowTelemetry reducers: summary percentiles, downsampling, pickling."""

import pickle

import numpy as np
import pytest

from repro.telemetry import Event, FlowTelemetry, SCHEMA_VERSION


def _artifact(n=101) -> FlowTelemetry:
    times = np.linspace(0.0, 10.0, n)
    values = np.arange(float(n))  # 0..n-1: percentiles are exact
    events = {
        "k": tuple(Event(float(i), "k", {"n": i}) for i in range(3)),
        "other": (Event(0.5, "other", {}),),
    }
    return FlowTelemetry(schema_version=SCHEMA_VERSION,
                         series={"s": (times, values)}, events=events,
                         dropped_events={"k": 7}, meta={"duration": 10.0})


class TestSummary:
    def test_percentiles_on_known_data(self):
        stats = _artifact(101).summary()["series"]["s"]
        assert stats["count"] == 101
        assert stats["mean"] == pytest.approx(50.0)
        assert stats["min"] == 0.0 and stats["max"] == 100.0
        assert stats["p50"] == pytest.approx(50.0)
        assert stats["p95"] == pytest.approx(95.0)
        assert stats["p99"] == pytest.approx(99.0)
        assert stats["t0"] == 0.0 and stats["t1"] == 10.0

    def test_event_and_drop_counts(self):
        info = _artifact().summary()
        assert info["events"] == {"k": 3, "other": 1}
        assert info["dropped_events"] == {"k": 7}
        assert info["schema_version"] == SCHEMA_VERSION

    def test_empty_channel(self):
        empty = np.empty(0)
        tel = FlowTelemetry(schema_version=SCHEMA_VERSION,
                            series={"s": (empty, empty)}, events={})
        assert tel.summary()["series"]["s"] == {"count": 0}


class TestDownsample:
    def test_keeps_endpoints(self):
        tel = _artifact(1001)
        times, values = tel.downsample("s", 50)
        assert len(times) <= 50
        assert times[0] == 0.0 and times[-1] == 10.0
        assert values[0] == 0.0 and values[-1] == 1000.0

    def test_small_series_unchanged(self):
        tel = _artifact(10)
        times, values = tel.downsample("s", 50)
        assert len(times) == 10
        np.testing.assert_allclose(values, np.arange(10.0))

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            _artifact().downsample("s", 1)


class TestAccessors:
    def test_counts_and_filters(self):
        tel = _artifact()
        assert tel.sample_count == 101
        assert tel.event_count == 4
        assert tel.series_names() == ["s"]
        assert tel.event_kinds() == ["k", "other"]
        assert [e.fields["n"] for e in tel.events_of("k")] == [0, 1, 2]
        assert tel.events_of("missing") == []
        assert [e.t for e in tel.all_events()] == [0.0, 0.5, 1.0, 2.0]

    def test_pickle_roundtrip(self):
        tel = _artifact()
        clone = pickle.loads(pickle.dumps(tel))
        assert clone.summary() == tel.summary()
        np.testing.assert_array_equal(clone.samples("s")[1],
                                      tel.samples("s")[1])
        assert clone.events_of("k") == tel.events_of("k")
