"""Recorder primitives: buffer growth, decimation, caps, adoption."""

import pickle

import numpy as np
import pytest

from repro.telemetry import (Event, EventChannel, NullRecorder, Recorder,
                             SeriesChannel, TelemetryConfig, SCHEMA_VERSION)


class TestSeriesChannel:
    def test_growth_beyond_initial_capacity(self):
        ch = SeriesChannel("x", capacity=4)
        for i in range(1000):
            assert ch.add(float(i), float(i * 2))
        assert len(ch) == 1000
        times, values = ch.data()
        np.testing.assert_allclose(times, np.arange(1000.0))
        np.testing.assert_allclose(values, np.arange(1000.0) * 2)

    def test_data_returns_trimmed_copies(self):
        ch = SeriesChannel("x", capacity=8)
        ch.add(1.0, 10.0)
        times, values = ch.data()
        assert len(times) == len(values) == 1
        times[0] = 99.0  # mutating the copy must not touch the buffer
        assert ch.data()[0][0] == 1.0

    def test_decimation(self):
        ch = SeriesChannel("x", min_interval=0.5)
        assert ch.add(0.0, 1.0)
        assert not ch.add(0.1, 2.0)   # too close: decimated away
        assert not ch.add(0.49, 3.0)
        assert ch.add(0.5, 4.0)
        assert len(ch) == 2
        assert ch.decimated == 2

    def test_no_decimation_by_default(self):
        ch = SeriesChannel("x")
        for t in (0.0, 0.0, 0.001):
            ch.add(t, 1.0)
        assert len(ch) == 3
        assert ch.decimated == 0


class TestEventChannel:
    def test_cap_and_dropped_counter(self):
        ch = EventChannel("k", cap=3)
        for i in range(5):
            ch.add(float(i), n=i)
        assert len(ch) == 3
        assert ch.dropped == 2
        assert [e.fields["n"] for e in ch.events] == [0, 1, 2]

    def test_events_are_typed_tuples(self):
        ch = EventChannel("k")
        event = ch.add(1.5, a=1, b="x")
        assert isinstance(event, Event)
        assert event.t == 1.5 and event.kind == "k"
        assert event.fields == {"a": 1, "b": "x"}


class TestRecorder:
    def test_channels_are_memoized(self):
        rec = Recorder()
        assert rec.series("a") is rec.series("a")
        assert rec.channel("k") is rec.channel("k")

    def test_config_governs_event_cap(self):
        rec = Recorder(TelemetryConfig(max_events_per_kind=2))
        for i in range(4):
            rec.event("k", float(i))
        assert len(rec.events("k")) == 2
        assert rec.channel("k").dropped == 2

    def test_events_merged_across_kinds_is_time_ordered(self):
        rec = Recorder()
        rec.event("b", 2.0)
        rec.event("a", 1.0)
        rec.event("b", 3.0)
        assert [e.t for e in rec.events()] == [1.0, 2.0, 3.0]
        assert [e.t for e in rec.events("b")] == [2.0, 3.0]
        assert rec.events("missing") == []

    def test_adopt_absorbs_channels_and_drop_counts(self):
        inner = Recorder(TelemetryConfig(max_events_per_kind=2))
        inner.sample("s", 0.0, 1.0)
        for i in range(3):
            inner.event("k", float(i), n=i)
        outer = Recorder()
        outer.event("k", 10.0, n=10)
        outer.adopt(inner)
        assert "s" in outer.series_names()
        events = outer.events("k")
        assert [e.fields["n"] for e in events] == [10, 0, 1]
        assert outer.channel("k").dropped == 1  # inner's overflow carried over

    def test_finish_produces_picklable_artifact(self):
        rec = Recorder()
        rec.sample("s", 0.0, 1.0)
        rec.event("k", 0.5, x=1)
        tel = rec.finish(meta={"duration": 1.0})
        assert tel.schema_version == SCHEMA_VERSION
        clone = pickle.loads(pickle.dumps(tel))
        assert clone.sample_count == 1 and clone.event_count == 1
        assert clone.meta["duration"] == 1.0


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        rec = NullRecorder()
        assert not rec.enabled
        rec.sample("s", 0.0, 1.0)
        rec.event("k", 0.0, x=1)
        assert not rec.series("s").add(0.0, 1.0)
        assert rec.channel("k").add(0.0) is None
        assert rec.events() == [] and rec.series_names() == []
        tel = rec.finish()
        assert tel.sample_count == 0 and tel.event_count == 0


class TestTelemetryConfig:
    def test_rejects_negative_schema_in_job(self):
        from repro.parallel import Job, FlowSpec
        from repro.scenarios.presets import WIRED

        with pytest.raises(ValueError):
            Job(scenario=WIRED["wired-24"], flows=(FlowSpec.make("cubic"),),
                telemetry=-1)
