"""End-to-end telemetry through the simulator, Libra, pool and cache.

Carries the PR's acceptance assertions: a traced C-Libra LTE run emits
at least one stage-transition event per control cycle, and every
per-cycle utility verdict's winning rate (after the rate floor) equals
the base rate the next cycle starts from.
"""

import pickle

import pytest

from repro.core.libra import LibraController
from repro.parallel import (ResultCache, has_fork, job_key, run_jobs,
                            single_flow_job)
from repro.scenarios.presets import LTE, WIRED, stress_scenario
from repro.telemetry import SCHEMA_VERSION, Recorder

needs_fork = pytest.mark.skipif(not has_fork(),
                                reason="platform lacks fork start method")


@pytest.fixture(scope="module")
def libra_trace():
    """One traced C-Libra run on the stationary LTE scenario."""
    job = single_flow_job("c-libra", LTE["lte-stationary"], seed=1,
                          duration=8.0, telemetry=True)
    result = job.run()
    assert result.telemetry is not None
    return result.telemetry


class TestTracedRun:
    def test_series_and_link_channels(self):
        job = single_flow_job("cubic", WIRED["wired-24"], seed=1,
                              duration=3.0, telemetry=True)
        tel = job.run().telemetry
        names = tel.series_names()
        for expected in ("flow0.rate", "flow0.srtt", "flow0.cwnd",
                         "flow0.inflight", "flow0.throughput",
                         "flow0.loss_rate", "link.queue_bytes",
                         "link.served_bytes", "link.dropped_packets"):
            assert expected in names
            assert len(tel.samples(expected)[0]) > 0
        # a 150 KB droptail buffer on 24 Mbps sees drops in 3 s of cubic
        assert tel.events_of("link.drop")
        assert tel.meta["duration"] == 3.0
        assert tel.meta["events_processed"] > 0

    def test_untraced_run_has_no_telemetry(self):
        job = single_flow_job("cubic", WIRED["wired-24"], seed=1,
                              duration=2.0)
        assert job.run().telemetry is None


class TestLibraAcceptance:
    def test_stage_event_per_cycle(self, libra_trace):
        stages = libra_trace.events_of("libra.stage")
        assert stages
        cycles = {e.fields["cycle"] for e in stages}
        last = max(cycles)
        assert last >= 5  # an 8 s LTE run spans many control cycles
        # every cycle between the first and last logged one has >= 1 event
        assert cycles.issuperset(range(min(cycles), last + 1))

    def test_verdict_winner_becomes_next_base(self, libra_trace):
        verdicts = libra_trace.events_of("libra.verdict")
        assert verdicts
        explores = {e.fields["cycle"]: e
                    for e in libra_trace.events_of("libra.stage")
                    if e.fields["stage"] == "explore"}
        chained = 0
        for v in verdicts:
            fields = v.fields
            assert fields["winner"] in fields["rates"]
            assert set(fields["rates"]) == set(fields["utilities"])
            floored = LibraController._rate_floor(
                fields["rates"][fields["winner"]])
            assert fields["new_base"] == pytest.approx(floored)
            nxt = explores.get(fields["cycle"] + 1)
            if nxt is not None:
                assert nxt.fields["base"] == pytest.approx(fields["new_base"])
                chained += 1
        assert chained >= 5

    def test_decision_log_property_mirrors_stage_events(self):
        recorder = Recorder()
        net = LTE["lte-stationary"].build(seed=1, recorder=recorder)
        from repro.registry import make_controller

        controller = make_controller("c-libra", seed=1)
        net.add_flow(controller)
        net.run(4.0)
        log = controller.decision_log
        stages = recorder.events("libra.stage")
        assert len(log) == len(stages) > 0
        t, stage, rate = log[0]
        assert (t, stage, rate) == (stages[0].t, stages[0].fields["stage"],
                                    stages[0].fields["rate"])


class TestFaultEvents:
    def test_blackout_and_ge_transitions_recorded(self):
        job = single_flow_job("cubic", stress_scenario("pathological"),
                              seed=3, telemetry=True)
        tel = job.run().telemetry
        blackouts = tel.events_of("fault.blackout")
        assert len(blackouts) == 1
        assert blackouts[0].fields["duration"] == pytest.approx(1.5)
        # the Gilbert-Elliott chain enters its bad state at least once
        ge = tel.events_of("fault.ge_state")
        assert any(e.fields["bad"] for e in ge)


class TestPoolAndCache:
    def test_job_key_is_schema_versioned(self):
        plain = single_flow_job("cubic", WIRED["wired-24"], seed=1,
                                duration=2.0)
        traced = plain.with_telemetry()
        assert traced.telemetry == SCHEMA_VERSION
        assert job_key(plain) != job_key(traced)
        assert traced.with_telemetry(False) == plain

    def test_cache_roundtrip_preserves_telemetry(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        job = single_flow_job("cubic", WIRED["wired-24"], seed=1,
                              duration=2.0, telemetry=True)
        [first] = run_jobs([job], workers=1, cache=cache)
        assert not first.cached and first.result.telemetry.sample_count > 0
        [second] = run_jobs([job], workers=1, cache=cache)
        assert second.cached
        assert second.result.telemetry.summary() == \
            first.result.telemetry.summary()

    @needs_fork
    def test_telemetry_crosses_fork_pool(self):
        jobs = [single_flow_job("cubic", WIRED["wired-24"], seed=s,
                                duration=2.0, telemetry=True)
                for s in (1, 2)]
        results = run_jobs(jobs, workers=2)
        for jr in results:
            tel = jr.result.telemetry
            assert tel is not None and tel.sample_count > 0
            pickle.loads(pickle.dumps(tel))
