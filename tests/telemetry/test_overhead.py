"""Disabled-telemetry overhead guarantees, checked structurally.

A wall-clock before/after comparison cannot run inside one revision, so
the budget is enforced by construction instead: an untraced run must
never append to a series buffer (asserted by making every append raise)
and must report zero operations in the cost meter's ``telemetry``
category, while a traced run reports many.  A generous microbenchmark
additionally bounds the cost of the one-attribute guard itself.
"""

import time

from repro.parallel import single_flow_job
from repro.registry import make_controller
from repro.scenarios.presets import WIRED
from repro.simnet.network import Dumbbell
from repro.simnet.trace import wired_trace
from repro.telemetry import Recorder
from repro.telemetry import recorder as recorder_mod


def _run_with_controller(telemetry: bool):
    """One 2 s cubic flow; returns its controller (which owns the meter)."""
    recorder = Recorder() if telemetry else None
    net = Dumbbell(wired_trace(24.0), buffer_bytes=150_000, rtt=0.03,
                   seed=1, recorder=recorder)
    controller = make_controller("cubic", seed=1)
    net.add_flow(controller)
    net.run(2.0)
    return controller


class TestDisabledPathIsInert:
    def test_untraced_run_never_touches_series_buffers(self, monkeypatch):
        def _forbidden(self, t, value):
            raise AssertionError(
                "SeriesChannel.add called during an untraced run")

        monkeypatch.setattr(recorder_mod.SeriesChannel, "add", _forbidden)
        job = single_flow_job("cubic", WIRED["wired-24"], seed=1,
                              duration=2.0)
        result = job.run()
        assert result.flows[0].throughput_mbps > 0

    def test_untraced_cubic_constructs_no_recorder(self, monkeypatch):
        def _forbidden(self, config=None):
            raise AssertionError("Recorder built for an untraced run")

        monkeypatch.setattr(recorder_mod.Recorder, "__init__", _forbidden)
        net = Dumbbell(wired_trace(24.0), buffer_bytes=150_000, rtt=0.03,
                       seed=1)
        net.add_flow(make_controller("cubic", seed=1))
        net.run(1.0)

    def test_meter_telemetry_category(self):
        untraced = _run_with_controller(telemetry=False)
        assert untraced.meter.counts["telemetry"] == 0
        traced = _run_with_controller(telemetry=True)
        assert traced.meter.counts["telemetry"] > 0

    def test_telemetry_is_free_in_the_cost_model(self):
        from repro.overhead.costmodel import WEIGHTS

        meter = _run_with_controller(telemetry=True).meter
        spent = meter.counts["telemetry"]
        meter.counts["telemetry"] = 0
        base = meter.total(WEIGHTS)
        meter.counts["telemetry"] = spent
        assert meter.total(WEIGHTS) == base


class TestGuardMicrocost:
    def test_attribute_guard_is_cheap(self):
        """The per-ACK cost when disabled is one ``is not None`` check."""
        class Host:
            telemetry = None

        host = Host()
        n = 200_000
        t0 = time.perf_counter()
        hits = 0
        for _ in range(n):
            if host.telemetry is not None:  # the hot-path guard pattern
                hits += 1  # pragma: no cover
        elapsed = time.perf_counter() - t0
        assert hits == 0
        # generous: even slow CI runners do this in far under 2 us/check
        assert elapsed / n < 2e-6, f"guard cost {elapsed / n:.2e}s"
