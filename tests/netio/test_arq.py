"""Selective-repeat sender: RTT/RTO estimation, Karn's rule, SACK loss
detection with the retransmission-in-flight guard, RTO backoff, window
gating, and sequence-ring wrap."""

import pytest

from repro.netio.arq import (INITIAL_RTO, MAX_RTO, MIN_RTO,
                             REORDER_THRESHOLD, SRSender, TransferAbort)
from repro.netio.framing import SEQ_MOD, AckPacket


def ack(cum, sacks=(), echo=0, delivered=0):
    return AckPacket(cum_ack=cum, echo_seq=echo, delivered_bytes=delivered,
                     sack_blocks=tuple(sacks))


def send_n(sender, n, size=100, start_t=0.0, gap=0.01):
    return [sender.register_send(bytes(size), start_t + i * gap)
            for i in range(n)]


class TestBasicAcking:
    def test_cumulative_ack_advances_base(self):
        s = SRSender()
        send_n(s, 3)
        outcome = s.on_ack(ack(3), now=0.1)
        assert [seq for seq, _, _ in outcome.acked] == [0, 1, 2]
        assert s.base == 3 and not s.outstanding
        assert s.acked_packets == 3
        assert s.delivered_bytes == 300
        assert s.inflight_bytes == 0

    def test_rtt_and_rto_estimation(self):
        s = SRSender()
        s.register_send(b"x" * 100, 0.0)
        outcome = s.on_ack(ack(1), now=0.1)
        (_, _, rtt), = outcome.acked
        assert rtt == pytest.approx(0.1)
        assert s.srtt == pytest.approx(0.1)
        assert s.rttvar == pytest.approx(0.05)
        # RFC 6298: rto = srtt + 4 * rttvar, floored at MIN_RTO
        assert s.rto == pytest.approx(max(0.1 + 4 * 0.05, MIN_RTO))
        assert s.min_rtt == pytest.approx(0.1)

    def test_rto_stays_bounded(self):
        s = SRSender()
        assert s.rto == INITIAL_RTO
        s.register_send(b"x", 0.0)
        s.on_ack(ack(1), now=0.001)
        assert s.rto >= MIN_RTO
        s.register_send(b"x", 1.0)
        s.on_ack(ack(2), now=100.0)
        assert s.rto <= MAX_RTO

    def test_duplicate_ack_flagged(self):
        s = SRSender()
        send_n(s, 2)
        s.on_ack(ack(2), now=0.1)
        outcome = s.on_ack(ack(2), now=0.2)
        assert outcome.duplicate and not outcome.acked

    def test_stale_wrapped_cum_ack_ignored(self):
        s = SRSender()
        send_n(s, 4)
        s.on_ack(ack(4), now=0.1)
        # A reordered old ACK for cum=2 is now "behind" base: ring
        # distance wraps to ~2^16 and must not touch the window.
        outcome = s.on_ack(ack(2), now=0.2)
        assert outcome.duplicate
        assert s.base == 4


class TestSackLossDetection:
    def test_hole_behind_reorder_threshold_is_lost(self):
        s = SRSender()
        send_n(s, 4)
        # seq 0 lost; SACK covers 1..3 => 3 packets past the hole.
        outcome = s.on_ack(ack(0, sacks=[(1, 4)]), now=0.1)
        assert [seq for seq, _ in outcome.newly_lost] == [0]
        assert s.lost_packets == 1
        assert 0 in s.rtx_queue

    def test_hole_below_threshold_not_lost(self):
        s = SRSender()
        send_n(s, REORDER_THRESHOLD)
        # Only REORDER_THRESHOLD - 1 packets SACKed past the hole.
        outcome = s.on_ack(ack(0, sacks=[(1, REORDER_THRESHOLD)]), now=0.1)
        assert not outcome.newly_lost

    def test_retransmission_in_flight_not_redeclared(self):
        s = SRSender()
        send_n(s, 4)
        s.on_ack(ack(0, sacks=[(1, 4)]), now=0.1)        # declares 0 lost
        record = s.next_retransmit(1.0)
        assert record.seq == 0 and record.retransmitted
        # seq 4 sent before the retransmission; its SACK must NOT
        # re-declare seq 0, whose retransmission is still in flight.
        s.register_send(bytes(100), 0.9)
        outcome = s.on_ack(ack(0, sacks=[(4, 5)]), now=1.1)
        assert not outcome.newly_lost
        assert s.lost_packets == 1

    def test_sack_after_retransmission_send_redeclares(self):
        s = SRSender()
        send_n(s, 4)
        s.on_ack(ack(0, sacks=[(1, 4)]), now=0.1)
        s.next_retransmit(1.0)                            # resend seq 0
        # Packets sent after the retransmission get SACKed => the
        # retransmission itself is presumed lost again.
        for t in (1.1, 1.2, 1.3):
            s.register_send(bytes(100), t)
        outcome = s.on_ack(ack(0, sacks=[(4, 7)]), now=1.5)
        assert [seq for seq, _ in outcome.newly_lost] == [0]
        assert s.lost_packets == 2

    def test_base_slides_over_sacked_holes(self):
        s = SRSender()
        send_n(s, 3)
        s.on_ack(ack(0, sacks=[(1, 3)]), now=0.1)
        assert s.base == 0            # seq 0 still outstanding (lost)
        s.next_retransmit(0.2)
        s.on_ack(ack(3), now=0.3)
        assert s.base == 3 and not s.outstanding


class TestKarnsRule:
    def test_retransmitted_packet_yields_no_rtt_sample(self):
        s = SRSender()
        send_n(s, 4)
        s.on_ack(ack(0, sacks=[(1, 4)]), now=0.05)
        srtt_before = s.srtt
        s.next_retransmit(0.2)
        outcome = s.on_ack(ack(4), now=0.4)
        (_, record, rtt), = outcome.acked
        assert record.retransmitted and rtt is None
        assert s.srtt == srtt_before


class TestTimeouts:
    def test_rto_fires_and_backs_off(self):
        s = SRSender()
        send_n(s, 2, start_t=0.0)
        assert not s.check_timeouts(0.5).newly_lost      # rto=1.0 not reached
        outcome = s.check_timeouts(1.5)
        assert len(outcome.newly_lost) == 2
        assert s._rto_backoff == 2.0
        # Doubled timer: next firing needs rto * 2 of further silence.
        assert s.next_timeout_deadline() == pytest.approx(1.5 + 2.0)

    def test_ack_resets_backoff(self):
        s = SRSender()
        send_n(s, 1)
        s.check_timeouts(2.0)
        assert s._rto_backoff == 2.0
        s.next_retransmit(2.1)
        s.on_ack(ack(1), now=2.3)
        assert s._rto_backoff == 1.0

    def test_timeout_decrements_inflight(self):
        s = SRSender()
        send_n(s, 2, size=500)
        assert s.inflight_bytes == 1000
        s.check_timeouts(2.0)
        assert s.inflight_bytes == 0
        s.next_retransmit(2.1)
        assert s.inflight_bytes == 500

    def test_max_retries_aborts(self):
        s = SRSender(max_retries=2)
        s.register_send(b"x", 0.0)
        t = 0.0
        with pytest.raises(TransferAbort):
            for _ in range(5):
                t += 10.0
                s.check_timeouts(t)
                s.next_retransmit(t + 0.1)


class TestWindowAndWrap:
    def test_window_gates_new_sends(self):
        s = SRSender(window=4)
        send_n(s, 4)
        assert not s.can_send_new()
        with pytest.raises(RuntimeError):
            s.register_send(b"x", 1.0)
        s.on_ack(ack(1), now=0.1)
        assert s.can_send_new()

    def test_window_must_fit_quarter_ring(self):
        with pytest.raises(ValueError):
            SRSender(window=SEQ_MOD // 4 + 1)
        with pytest.raises(ValueError):
            SRSender(window=0)

    def test_sequence_wrap_cumulative(self):
        s = SRSender(initial_seq=SEQ_MOD - 6)
        seqs = send_n(s, 10)
        assert seqs[:6] == list(range(SEQ_MOD - 6, SEQ_MOD))
        assert seqs[6:] == [0, 1, 2, 3]
        outcome = s.on_ack(ack(4), now=0.2)
        assert len(outcome.acked) == 10
        assert s.base == 4 and not s.outstanding

    def test_sequence_wrap_sack_loss(self):
        s = SRSender(initial_seq=SEQ_MOD - 2)
        send_n(s, 5)             # 65534 65535 0 1 2
        outcome = s.on_ack(
            ack(SEQ_MOD - 2, sacks=[(SEQ_MOD - 1, 3)]), now=0.1)
        assert len(outcome.acked) == 4
        assert [seq for seq, _ in outcome.newly_lost] == [SEQ_MOD - 2]

    def test_done_semantics(self):
        s = SRSender()
        assert s.done(total_sent=True)
        send_n(s, 1)
        assert not s.done(total_sent=True)
        s.on_ack(ack(1), now=0.1)
        assert s.done(total_sent=True)
        assert not s.done(total_sent=False)
