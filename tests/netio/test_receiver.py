"""Receive-side reorder buffer: in-order release, SACK generation,
duplicate handling, and ring wrap."""

from repro.netio.framing import MAX_SACK_BLOCKS, SEQ_MOD, DataPacket
from repro.netio.rxbuf import SRReceiver


def data(seq, payload=b"0123456789", retransmit=False):
    return DataPacket(seq=seq, payload=payload, retransmit=retransmit)


class TestInOrder:
    def test_sequential_release(self):
        rx = SRReceiver()
        for i in range(3):
            result = rx.on_data(data(i))
            assert result.delivered == [b"0123456789"]
            assert result.cum_ack == i + 1
            assert result.sack_blocks == ()
            assert not result.duplicate
        assert rx.delivered_bytes == 30 and rx.released_bytes == 30

    def test_delivered_counter_tracks_novel_bytes(self):
        rx = SRReceiver()
        rx.on_data(data(0))
        rx.on_data(data(2))              # held, still novel
        assert rx.delivered_bytes == 20
        assert rx.released_bytes == 10


class TestOutOfOrder:
    def test_hole_then_fill(self):
        rx = SRReceiver()
        rx.on_data(data(0))
        held = rx.on_data(data(2))
        assert held.delivered == [] and held.cum_ack == 1
        assert held.sack_blocks == ((2, 3),)
        assert rx.holes == 1
        fill = rx.on_data(data(1))
        assert fill.delivered == [b"0123456789"] * 2
        assert fill.cum_ack == 3 and fill.sack_blocks == ()
        assert rx.holes == 0

    def test_sack_blocks_merge_contiguous_runs(self):
        rx = SRReceiver()
        rx.on_data(data(0))
        for seq in (2, 3, 5):
            rx.on_data(data(seq))
        assert rx.sack_blocks() == ((2, 4), (5, 6))

    def test_sack_blocks_capped_at_wire_limit(self):
        rx = SRReceiver()
        # MAX_SACK_BLOCKS + 2 isolated islands (every other seq).
        for i in range(MAX_SACK_BLOCKS + 2):
            rx.on_data(data(2 + 2 * i))
        blocks = rx.sack_blocks()
        assert len(blocks) == MAX_SACK_BLOCKS
        assert blocks[0] == (2, 3)      # nearest-to-cumulative first


class TestDuplicates:
    def test_already_released_is_duplicate(self):
        rx = SRReceiver()
        rx.on_data(data(0))
        result = rx.on_data(data(0))
        assert result.duplicate
        assert rx.duplicate_packets == 1
        assert rx.delivered_bytes == 10    # not double counted

    def test_held_copy_is_duplicate(self):
        rx = SRReceiver()
        rx.on_data(data(2))
        result = rx.on_data(data(2))
        assert result.duplicate and rx.holes == 1

    def test_outside_window_dropped_as_duplicate(self):
        rx = SRReceiver(window=64)
        result = rx.on_data(data(64))
        assert result.duplicate
        assert rx.delivered_bytes == 0


class TestBufferCap:
    def test_out_of_order_drop_at_cap(self):
        rx = SRReceiver(max_buffer_bytes=25)
        rx.on_data(data(2))
        rx.on_data(data(3))              # 20 bytes held
        result = rx.on_data(data(4))     # +10 would breach the 25-byte cap
        assert result.dropped and not result.duplicate
        assert result.delivered == []
        assert rx.buffer_drops == 1
        assert rx.buffered_bytes == 20
        # The dropped packet was not acked in any form: no SACK coverage.
        assert result.sack_blocks == ((2, 4),)

    def test_in_order_always_passes(self):
        rx = SRReceiver(max_buffer_bytes=5)   # cap below one payload
        result = rx.on_data(data(0))
        assert not result.dropped
        assert result.delivered == [b"0123456789"]

    def test_buffered_bytes_released_on_fill(self):
        rx = SRReceiver(max_buffer_bytes=100)
        rx.on_data(data(1))
        rx.on_data(data(2))
        assert rx.buffered_bytes == 20
        rx.on_data(data(0))              # repairs the hole, releases all
        assert rx.buffered_bytes == 0

    def test_dropped_packet_accepted_after_release(self):
        rx = SRReceiver(max_buffer_bytes=10)
        rx.on_data(data(1))              # held, at cap
        dropped = rx.on_data(data(2))    # refused
        assert dropped.dropped
        rx.on_data(data(0))              # release 0..1, buffer empties
        retry = rx.on_data(data(2))      # the ARQ's retransmission lands
        assert not retry.dropped
        assert rx.released_bytes == 30


class TestWrap:
    def test_release_across_ring_boundary(self):
        rx = SRReceiver(initial_seq=SEQ_MOD - 2)
        rx.on_data(data(SEQ_MOD - 2))
        rx.on_data(data(SEQ_MOD - 1))
        result = rx.on_data(data(0))
        assert result.cum_ack == 1
        assert rx.released_bytes == 30

    def test_sack_block_spanning_wrap(self):
        rx = SRReceiver(initial_seq=SEQ_MOD - 2)
        rx.on_data(data(SEQ_MOD - 1))
        rx.on_data(data(0))
        assert rx.sack_blocks() == ((SEQ_MOD - 1, 1),)
        result = rx.on_data(data(SEQ_MOD - 2))
        assert result.cum_ack == 1 and len(result.delivered) == 3
