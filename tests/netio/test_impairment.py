"""Loopback impairment: profile validation, seeded determinism, and
stream identity with the shared distribution samplers."""

import pytest

from repro.netio.impairment import ImpairmentProfile, LoopbackImpairment
from repro.simnet.distributions import (GilbertElliottSampler, bernoulli,
                                        impairment_rng, uniform_jitter)


class TestProfileValidation:
    def test_probabilities_bounded(self):
        with pytest.raises(ValueError):
            ImpairmentProfile(loss=1.5)
        with pytest.raises(ValueError):
            ImpairmentProfile(ack_loss=-0.1)

    def test_delays_non_negative(self):
        with pytest.raises(ValueError):
            ImpairmentProfile(delay=-0.01)

    def test_reorder_needs_holdback(self):
        with pytest.raises(ValueError):
            ImpairmentProfile(reorder_probability=0.1)
        ImpairmentProfile(reorder_probability=0.1, reorder_extra=0.02)

    def test_active_flag(self):
        assert not ImpairmentProfile().active
        assert ImpairmentProfile(loss=0.01).active
        assert ImpairmentProfile(delay=0.02).active
        assert ImpairmentProfile(burst=(0.01, 0.2, 0.0, 0.5)).active


class TestDeterminism:
    def test_same_seed_same_verdict_stream(self):
        profile = ImpairmentProfile(loss=0.1, delay=0.01, jitter=0.005,
                                    reorder_probability=0.05,
                                    reorder_extra=0.02, seed=7)
        a = LoopbackImpairment(profile, seed=3)
        b = LoopbackImpairment(profile, seed=3)
        verdicts_a = [a.data_verdict() for _ in range(500)]
        verdicts_b = [b.data_verdict() for _ in range(500)]
        assert verdicts_a == verdicts_b
        assert a.counters() == b.counters()
        assert a.data_drops > 0 and a.reordered > 0

    def test_different_run_seed_different_stream(self):
        profile = ImpairmentProfile(loss=0.1, seed=7)
        a = LoopbackImpairment(profile, seed=1)
        b = LoopbackImpairment(profile, seed=2)
        va = [a.data_verdict() is None for _ in range(300)]
        vb = [b.data_verdict() is None for _ in range(300)]
        assert va != vb

    def test_loss_stream_matches_shared_sampler(self):
        """The drop pattern is exactly ``bernoulli`` over ``impairment_rng``
        — the same primitives ``FaultInjector`` consumes (satellite:
        shared distributions)."""
        profile = ImpairmentProfile(loss=0.08, seed=11)
        imp = LoopbackImpairment(profile, seed=4)
        rng = impairment_rng(11, 4)
        for _ in range(400):
            expected_drop = bernoulli(rng, 0.08)
            assert (imp.data_verdict() is None) == expected_drop

    def test_jitter_stream_matches_shared_sampler(self):
        profile = ImpairmentProfile(delay=0.01, jitter=0.004, seed=5)
        imp = LoopbackImpairment(profile, seed=2)
        rng = impairment_rng(5, 2)
        for _ in range(100):
            expected = 0.01 + uniform_jitter(rng, 0.004)
            assert imp.data_verdict() == pytest.approx(expected)

    def test_burst_stream_matches_shared_sampler(self):
        burst = (0.05, 0.3, 0.0, 0.8)
        profile = ImpairmentProfile(burst=burst, seed=9)
        imp = LoopbackImpairment(profile, seed=1)
        rng = impairment_rng(9, 1)
        ge = GilbertElliottSampler(*burst)
        for _ in range(500):
            drop, _ = ge.step(rng)
            assert (imp.data_verdict() is None) == drop
        assert imp.data_drops > 0


class TestPaths:
    def test_pure_delay_never_drops(self):
        imp = LoopbackImpairment(ImpairmentProfile(delay=0.02))
        for _ in range(100):
            assert imp.data_verdict() == pytest.approx(0.02)
        assert imp.data_drops == 0 and imp.delayed == 100

    def test_ack_loss_only_touches_ack_path(self):
        imp = LoopbackImpairment(ImpairmentProfile(ack_loss=0.5, seed=3))
        outcomes = [imp.deliver_ack() for _ in range(200)]
        assert 0 < imp.ack_drops < 200
        assert outcomes.count(False) == imp.ack_drops
        assert imp.data_verdict() == 0.0      # data path untouched
        assert imp.data_drops == 0

    def test_reorder_adds_holdback(self):
        imp = LoopbackImpairment(ImpairmentProfile(
            reorder_probability=1.0, reorder_extra=0.03, seed=1))
        assert imp.data_verdict() == pytest.approx(0.03)
        assert imp.reordered == 1
