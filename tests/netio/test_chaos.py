"""The chaos harness's own contract: every scenario passes against the
hardened server, failures are collected FailedRun-style, and the corpus
generator is deterministic per seed."""

import pytest

from repro.netio.chaos import (CHAOS_SCENARIOS, ChaosReport, fuzz_corpus,
                               run_chaos)


class TestFuzzCorpus:
    def test_deterministic_per_seed(self):
        assert fuzz_corpus(7) == fuzz_corpus(7)
        assert fuzz_corpus(7) != fuzz_corpus(8)

    def test_includes_the_deep_nesting_vector(self):
        corpus = fuzz_corpus(1, count=10)
        assert any(b"[" * 100 in frame for frame in corpus)


class TestRunner:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(names=["nope"])

    def test_crash_collected_not_raised(self, monkeypatch):
        async def boom(seed, recorder=None):
            raise RuntimeError("scenario blew up")

        monkeypatch.setitem(CHAOS_SCENARIOS, "kill-client", boom)
        report, = run_chaos(names=["kill-client"], seed=1)
        assert isinstance(report, ChaosReport)
        assert not report.passed
        assert "scenario blew up" in report.error
        assert report.traceback is not None

    def test_report_summary_shape(self):
        report, = run_chaos(names=["server-restart"], seed=3)
        summary = report.summary()
        assert summary["scenario"] == "server-restart"
        assert isinstance(summary["checks"], list)
        assert all({"name", "passed", "detail"} <= set(c)
                   for c in summary["checks"])


@pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
def test_scenario_passes(name):
    """Each chaos scenario holds against the hardened serving path."""
    report, = run_chaos(names=[name], seed=1)
    detail = "; ".join(str(check) for check in report.checks
                       if not check.passed)
    assert report.passed, f"{report}: {detail or report.error}" + \
        (f"\n{report.traceback}" if report.traceback else "")
