"""Wire-format round-trips, ring arithmetic, and malformed-datagram cases."""

import pytest

from repro.netio.framing import (ACK, DATA, FIN, MAX_SACK_BLOCKS, SEQ_MOD,
                                 SYN, SYNACK, AckPacket, ControlPacket,
                                 DataPacket, FramingError, decode, encode_ack,
                                 encode_control, encode_data, seq_add,
                                 seq_dist, seq_in_window)


class TestRingHelpers:
    def test_seq_add_wraps(self):
        assert seq_add(0) == 1
        assert seq_add(SEQ_MOD - 1) == 0
        assert seq_add(SEQ_MOD - 2, 5) == 3

    def test_seq_dist_forward_distance(self):
        assert seq_dist(10, 15) == 5
        assert seq_dist(15, 10) == SEQ_MOD - 5
        assert seq_dist(SEQ_MOD - 3, 2) == 5
        assert seq_dist(7, 7) == 0

    def test_seq_in_window_across_wrap(self):
        start = SEQ_MOD - 4
        assert seq_in_window(SEQ_MOD - 1, start, 8)
        assert seq_in_window(3, start, 8)
        assert not seq_in_window(4, start, 8)
        assert not seq_in_window(start - 1, start, 8)


class TestDataRoundTrip:
    def test_basic(self):
        pkt = decode(encode_data(42, b"hello"))
        assert isinstance(pkt, DataPacket)
        assert pkt.seq == 42 and pkt.payload == b"hello"
        assert not pkt.retransmit

    def test_retransmit_flag(self):
        pkt = decode(encode_data(7, b"x", retransmit=True))
        assert pkt.retransmit

    def test_seq_masked_to_ring(self):
        pkt = decode(encode_data(SEQ_MOD + 3, b"y"))
        assert pkt.seq == 3

    def test_empty_payload(self):
        pkt = decode(encode_data(0, b""))
        assert pkt.payload == b""


class TestAckRoundTrip:
    def test_basic(self):
        blocks = ((5, 8), (12, 13))
        pkt = decode(encode_ack(4, 7, 123456, blocks))
        assert isinstance(pkt, AckPacket)
        assert pkt.cum_ack == 4 and pkt.echo_seq == 7
        assert pkt.delivered_bytes == 123456
        assert pkt.sack_blocks == blocks

    def test_no_sack_blocks(self):
        pkt = decode(encode_ack(9, 9, 0))
        assert pkt.sack_blocks == ()

    def test_block_count_capped_at_wire_limit(self):
        blocks = tuple((i * 2, i * 2 + 1) for i in range(MAX_SACK_BLOCKS + 4))
        pkt = decode(encode_ack(0, 0, 0, blocks))
        assert len(pkt.sack_blocks) == MAX_SACK_BLOCKS
        assert pkt.sack_blocks == blocks[:MAX_SACK_BLOCKS]

    def test_large_delivered_counter(self):
        pkt = decode(encode_ack(0, 0, 50 * 1024 ** 3))
        assert pkt.delivered_bytes == 50 * 1024 ** 3


class TestControlRoundTrip:
    def test_syn_with_meta(self):
        meta = {"bytes": 1048576, "mss": 1200, "cca": "libra:cubic", "isn": 9}
        pkt = decode(encode_control(SYN, 9, meta))
        assert isinstance(pkt, ControlPacket)
        assert pkt.ptype == SYN and pkt.seq == 9 and pkt.meta == meta

    def test_fin_without_meta(self):
        pkt = decode(encode_control(FIN, 100))
        assert pkt.ptype == FIN and pkt.meta == {}

    def test_non_control_type_rejected(self):
        with pytest.raises(FramingError):
            encode_control(DATA, 0)
        with pytest.raises(FramingError):
            encode_control(ACK, 0)


class TestMalformedDatagrams:
    def test_too_short(self):
        with pytest.raises(FramingError):
            decode(b"\x01")

    def test_truncated_ack_header(self):
        with pytest.raises(FramingError):
            decode(encode_ack(0, 0, 0)[:-3])

    def test_truncated_sack_blocks(self):
        with pytest.raises(FramingError):
            decode(encode_ack(0, 0, 0, ((1, 2),))[:-2])

    def test_empty_sack_block(self):
        with pytest.raises(FramingError):
            decode(encode_ack(0, 0, 0, ((5, 5),)))

    def test_overlong_sack_count_claim(self):
        raw = bytearray(encode_ack(0, 0, 0))
        raw[1] = MAX_SACK_BLOCKS + 1
        with pytest.raises(FramingError):
            decode(bytes(raw))

    def test_data_length_mismatch(self):
        with pytest.raises(FramingError):
            decode(encode_data(0, b"abcdef")[:-1])

    def test_unknown_type(self):
        raw = bytearray(encode_control(SYNACK, 0))
        raw[0] = 99
        with pytest.raises(FramingError):
            decode(bytes(raw))

    def test_bad_control_json(self):
        good = encode_control(SYN, 0, {"a": 1})
        raw = good[:8] + b"notjson!"
        with pytest.raises(FramingError):
            decode(raw)

    def test_control_meta_must_be_object(self):
        import json
        import struct
        body = json.dumps([1, 2]).encode()
        raw = struct.pack("!BBHHH", SYN, 0, 0, len(body), 0) + body
        with pytest.raises(FramingError):
            decode(raw)

    def test_oversized_control_meta_rejected_on_encode(self):
        from repro.netio.framing import MAX_CONTROL_BYTES
        with pytest.raises(FramingError):
            encode_control(SYN, 0, {"pad": "x" * MAX_CONTROL_BYTES})

    def test_oversized_control_meta_rejected_on_decode(self):
        import struct
        from repro.netio.framing import MAX_CONTROL_BYTES
        body = b"{" + b" " * (MAX_CONTROL_BYTES + 10)
        raw = struct.pack("!BBHHH", SYN, 0, 0, len(body), 0) + body
        with pytest.raises(FramingError):
            decode(raw)

    def test_deeply_nested_control_meta_is_framing_error(self):
        # Kilobytes of "[" used to escape as RecursionError and kill the
        # datagram handler; it must surface as FramingError like any
        # other malformed frame.
        import struct
        body = b"[" * 4000
        raw = struct.pack("!BBHHH", SYN, 0, 0, len(body), 0) + body
        with pytest.raises(FramingError):
            decode(raw)


class TestDecodeFuzz:
    """Seeded fuzz: whatever bytes arrive, ``decode`` either returns a
    packet or raises :class:`FramingError` — never anything else."""

    @staticmethod
    def _assert_decodes_or_frames(datagram: bytes) -> None:
        try:
            pkt = decode(datagram)
        except FramingError:
            return
        assert isinstance(pkt, (DataPacket, AckPacket, ControlPacket))

    def test_random_bytes(self):
        import random
        rng = random.Random(0xF022)
        for _ in range(2000):
            self._assert_decodes_or_frames(
                rng.randbytes(rng.randrange(0, 128)))

    def test_truncations_of_valid_frames(self):
        frames = [
            encode_data(7, b"payload" * 10, retransmit=True),
            encode_ack(3, 9, 12345, ((4, 6), (9, 12))),
            encode_control(SYN, 1, {"bytes": 1024, "isn": 1, "cca": "x"}),
            encode_control(FIN, 200),
        ]
        for frame in frames:
            for cut in range(len(frame)):
                self._assert_decodes_or_frames(frame[:cut])

    def test_bit_flips_of_valid_frames(self):
        import random
        rng = random.Random(0xB17)
        frames = [
            encode_data(1000, bytes(range(48))),
            encode_ack(0, 0, 999, ((1, 2),)),
            encode_control(SYNACK, 5),
            encode_control(SYN, 0, {"bytes": 10, "mss": 1200}),
        ]
        for frame in frames:
            for _ in range(400):
                flipped = bytearray(frame)
                pos = rng.randrange(len(flipped))
                flipped[pos] ^= 1 << rng.randrange(8)
                self._assert_decodes_or_frames(bytes(flipped))

    def test_shared_chaos_corpus(self):
        # The socket-level chaos corpus holds at the decode layer too.
        from repro.netio.chaos import fuzz_corpus
        for datagram in fuzz_corpus(seed=99, count=500):
            self._assert_decodes_or_frames(datagram)
