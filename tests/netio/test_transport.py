"""End-to-end loopback transfers over the asyncio UDP datapath.

Includes the PR's acceptance transfer: >= 1 MiB under seeded 2 % loss
and 20 ms one-way delay, completed by ``libra:cubic`` AND a classic CCA
using the unmodified controller classes, with a schema-valid
``FlowTelemetry`` artifact.
"""

import asyncio

import pytest

from repro.netio import (ImpairmentProfile, NetioServer, TransferAbort,
                         TransferTimeout, send_payload)
from repro.registry import make_controller
from repro.telemetry import Recorder, validate_jsonl, write_jsonl

LOSSY = ImpairmentProfile(loss=0.02, delay=0.02, seed=1)


def loopback_transfer(cca, nbytes, impairment=None, recorder=None,
                      mss=1200, initial_seq=0, seed=1, timeout=60.0):
    async def run():
        server = NetioServer()
        host, port = await server.start()
        try:
            result = await send_payload(
                host, port, make_controller(cca, seed=seed), bytes(nbytes),
                mss=mss, impairment=impairment, seed=seed, recorder=recorder,
                timeout=timeout, initial_seq=initial_seq, cca_name=cca)
            stats = await server.serve_one(timeout=5.0)
            return result, stats
        finally:
            await server.close()

    return asyncio.run(run())


class TestCleanLoopback:
    def test_small_transfer_completes_without_loss(self):
        result, stats = loopback_transfer("cubic", 100_000)
        assert result.bytes_acked == 100_000
        assert result.lost_packets == 0 and result.retransmissions == 0
        assert stats.complete and stats.bytes_released == 100_000
        assert stats.duplicate_packets == 0

    def test_server_stats_summary_shape(self):
        _, stats = loopback_transfer("reno", 50_000)
        summary = stats.summary()
        assert summary["complete"] is True
        assert summary["bytes"] == 50_000
        assert summary["meta"]["cca"] == "reno"
        assert summary["goodput_mbps"] > 0

    def test_sequence_wrap_mid_transfer(self):
        # 200 x 500-byte packets starting 20 short of the ring edge.
        result, stats = loopback_transfer("cubic", 100_000, mss=500,
                                          initial_seq=(1 << 16) - 20)
        assert result.bytes_acked == 100_000
        assert stats.complete and stats.duplicate_packets == 0


class TestImpairedLoopback:
    def test_acceptance_libra_cubic_1mib_lossy(self):
        """The PR's acceptance transfer, Libra framework flavour."""
        recorder = Recorder()
        result, stats = loopback_transfer("libra:cubic", 1_048_576,
                                          impairment=LOSSY,
                                          recorder=recorder)
        assert stats.complete
        assert result.bytes_acked == 1_048_576
        assert result.retransmissions >= 1
        assert result.lost_packets >= 1
        assert result.impairment["data_drops"] >= 1
        # Loss accounting closes: every impairment drop was recovered.
        assert result.telemetry is not None
        assert result.telemetry.meta["transport"] == "netio-udp"
        assert result.telemetry.meta["cca"] == "libra:cubic"

    def test_acceptance_classic_cca_1mib_lossy(self):
        """Same transfer with an unmodified classic window CCA."""
        result, stats = loopback_transfer("cubic", 1_048_576,
                                          impairment=LOSSY)
        assert stats.complete and result.bytes_acked == 1_048_576
        assert result.retransmissions >= 1
        # One-way impairment delay dominates the observed RTT.
        assert 0.019 <= result.srtt <= 0.2

    def test_telemetry_artifact_validates(self, tmp_path):
        recorder = Recorder()
        result, _ = loopback_transfer("libra:cubic", 262_144,
                                      impairment=LOSSY, recorder=recorder)
        out = tmp_path / "netio.jsonl"
        assert write_jsonl(result.telemetry, out) > 0
        info = validate_jsonl(out)
        assert info["schema_version"] == 1
        assert "flow0.rate" in info["series"]
        assert "flow0.srtt" in info["series"]
        assert "netio.handshake" in info["event_kinds"]
        assert "libra.stage" in info["event_kinds"]

    def test_rate_based_cca_over_sockets(self):
        result, stats = loopback_transfer("bbr", 262_144, impairment=LOSSY)
        assert stats.complete and result.bytes_acked == 262_144
        assert result.mi_reports >= 1

    def test_reordering_does_not_corrupt_payload_accounting(self):
        profile = ImpairmentProfile(delay=0.005, reorder_probability=0.1,
                                    reorder_extra=0.02, seed=2)
        result, stats = loopback_transfer("cubic", 200_000, impairment=profile)
        assert stats.complete
        assert stats.bytes_released == 200_000
        assert result.bytes_acked == 200_000


class TestFailurePaths:
    def test_timeout_when_no_server(self):
        async def run():
            # Reserved port with no listener: handshake cannot complete.
            # Either the wall clock (TransferTimeout) or the handshake
            # retry budget (TransferAbort) gives up first.
            await send_payload("127.0.0.1", 9, make_controller("cubic"),
                               b"x" * 1000, timeout=1.5)

        with pytest.raises((TransferTimeout, TransferAbort, OSError)):
            asyncio.run(run())

    def test_mss_validated(self):
        from repro.netio import NetioClient

        with pytest.raises(ValueError):
            NetioClient(make_controller("cubic"), b"x", mss=0)
