"""Signal-stream parity: the netio datapath vs. the simulator.

The sim-to-real claim is that an *unchanged* controller cannot tell
which datapath it is running on: both feed it the same
``AckSample`` / ``LossSample`` / ``IntervalReport`` dialect with
physically sensible values.  This test runs ``libra:cubic`` over (a) the
asyncio UDP loopback with a seeded 2 % loss / 20 ms delay impairment and
(b) an equivalent simulated bottleneck, captures everything the
controller observed through a transparent wrapper, and asserts the two
signal streams have matching shapes and ranges — and that none of the
netio-side inputs would trip the policy feature clip.
"""

import asyncio

import numpy as np
import pytest

from repro.env.bridge import measurement_from_report
from repro.env.features import (FEATURE_CLIP, STATE_SETS, Normalizer,
                                StateBuilder)
from repro.netio import ImpairmentProfile, NetioServer, send_payload
from repro.registry import make_controller
from repro.simnet.network import Dumbbell
from repro.simnet.packet import AckSample, IntervalReport
from repro.simnet.trace import wired_trace

CCA = "libra:cubic"
SEED = 1
#: the loopback impairment and the simulated bottleneck describe the
#: same nominal network: 20 ms RTT floor, 2 % random loss, loss-limited
#: throughput well below the 48 Mbps pipe
IMPAIRMENT = ImpairmentProfile(loss=0.02, delay=0.02, seed=SEED)
SIM_RTT = 0.02
SIM_LOSS = 0.02
SIM_BW_MBPS = 48.0


class SignalProbe:
    """Transparent controller wrapper that records the observed stream."""

    def __init__(self, inner):
        self.inner = inner
        self.acks = []
        self.losses = []
        self.reports = []

    def __getattr__(self, name):
        return getattr(self.__dict__["inner"], name)

    def on_ack(self, ack):
        self.acks.append(ack)
        self.inner.on_ack(ack)

    def on_loss(self, loss):
        self.losses.append(loss)
        self.inner.on_loss(loss)

    def on_interval(self, report):
        self.reports.append(report)
        self.inner.on_interval(report)


def run_netio(probe):
    async def run():
        server = NetioServer()
        host, port = await server.start()
        try:
            result = await send_payload(host, port, probe, bytes(262_144),
                                        impairment=IMPAIRMENT, seed=SEED,
                                        timeout=60.0, cca_name=CCA)
            await server.serve_one(timeout=5.0)
            return result
        finally:
            await server.close()

    return asyncio.run(run())


def run_simnet(probe):
    rtt = SIM_RTT
    bdp = SIM_BW_MBPS * 1e6 * rtt / 8.0
    net = Dumbbell(wired_trace(SIM_BW_MBPS), buffer_bytes=bdp, rtt=rtt,
                   loss_rate=SIM_LOSS, seed=SEED)
    net.add_flow(probe)
    return net.run(6.0)


@pytest.fixture(scope="module")
def probes():
    netio_probe = SignalProbe(make_controller(CCA, seed=SEED))
    result = run_netio(netio_probe)
    assert result.bytes_acked == 262_144
    sim_probe = SignalProbe(make_controller(CCA, seed=SEED))
    run_simnet(sim_probe)
    return netio_probe, sim_probe


class TestStreamShape:
    def test_both_datapaths_produce_the_same_record_types(self, probes):
        netio_probe, sim_probe = probes
        for probe in probes:
            assert probe.acks and probe.reports
            assert all(isinstance(a, AckSample) for a in probe.acks)
            assert all(isinstance(r, IntervalReport) for r in probe.reports)
        assert netio_probe.losses and sim_probe.losses

    def test_ack_samples_monotone_time_axis(self, probes):
        for probe in probes:
            times = [a.now for a in probe.acks]
            assert times == sorted(times)
            assert times[0] >= 0.0


class TestSignalRanges:
    def test_srtt_ranges_match(self, probes):
        medians = []
        for probe in probes:
            srtts = np.array([a.srtt for a in probe.acks if a.srtt > 0])
            assert srtts.size > 0
            # Both datapaths sit on a ~20 ms RTT floor with shallow
            # queueing on top.
            assert 0.015 <= np.median(srtts) <= 0.08
            medians.append(np.median(srtts))
        assert max(medians) / min(medians) < 3.0

    def test_min_rtt_observed_near_the_floor(self, probes):
        for probe in probes:
            min_rtt = min(a.min_rtt for a in probe.acks)
            assert 0.01 <= min_rtt <= 0.05

    def test_delivery_rates_plausible_and_same_scale(self, probes):
        peaks = []
        for probe in probes:
            rates = np.array([a.delivery_rate for a in probe.acks])
            assert np.all(np.isfinite(rates)) and np.all(rates >= 0)
            # Loss-limited flows: well above the pacing floor, well
            # below the 48 Mbps pipe.
            peak = rates.max()
            assert 1e5 <= peak <= 6e7
            peaks.append(peak)
        assert max(peaks) / min(peaks) < 30.0

    def test_observed_loss_fraction_matches_the_2pct_process(self, probes):
        for probe in probes:
            fraction = len(probe.losses) / (len(probe.acks)
                                            + len(probe.losses))
            assert 0.001 <= fraction <= 0.1

    def test_interval_reports_aggregate_consistently(self, probes):
        for probe in probes:
            fed = [r for r in probe.reports if r.has_feedback]
            assert fed
            for report in fed:
                assert report.duration > 0
                assert report.throughput >= 0
                assert 0.0 <= report.loss_rate <= 1.0
                assert report.acked_packets <= report.sent_packets \
                    + report.lost_packets + len(probe.acks)


class TestFeatureClip:
    def test_netio_inputs_never_trip_the_policy_clip(self, probes):
        """Every netio-observed MI, pushed through the exact feature
        pipeline the learned policies consume, stays strictly inside
        the finite FEATURE_CLIP guard — real-socket signals are as
        policy-safe as simulated ones."""
        netio_probe, _ = probes
        builder = StateBuilder(STATE_SETS["libra"], history=8,
                               normalizer=Normalizer())
        fed = [r for r in netio_probe.reports if r.has_feedback]
        assert fed
        for report in fed:
            min_rtt = report.min_rtt if report.min_rtt > 0 else SIM_RTT
            m = measurement_from_report(report, rate_bps=report.send_rate,
                                        min_rtt=min_rtt)
            state = builder.push(m)
            assert np.all(np.isfinite(state))
            assert np.all(np.abs(state) < FEATURE_CLIP)
