"""Invariant layer on the real datapath: clean transfers stay clean,
seq-ring corruption trips.

The loopback transfer runs the full asyncio UDP stack with sanitizers
active — every ARQ sender/receiver built inside the ``activate`` block
captures them — and must finish with audits performed and zero
violations even under seeded loss.  The directed tests then feed the ARQ
sender acknowledgements for data it never sent and assert the
``netio.ack_beyond_sent`` / ``netio.sack_beyond_sent`` invariants fire
before the window is corrupted.
"""

import asyncio

import pytest

from repro.netio import NetioServer, send_payload
from repro.netio.arq import SRSender
from repro.netio.framing import SEQ_MOD, AckPacket
from repro.netio.rxbuf import SRReceiver
from repro.registry import make_controller
from repro.sanitize import InvariantViolation, SimSanitizer, activate


def _sanitized_loopback(cca, nbytes, impairment=None, seed=1):
    sanitizer = SimSanitizer()

    async def run():
        server = NetioServer()
        host, port = await server.start()
        try:
            result = await send_payload(
                host, port, make_controller(cca, seed=seed), bytes(nbytes),
                mss=1200, impairment=impairment, seed=seed, timeout=60.0,
                cca_name=cca)
            stats = await server.serve_one(timeout=5.0)
            return result, stats
        finally:
            await server.close()

    with activate(sanitizer):
        result, stats = asyncio.run(run())
    return result, stats, sanitizer


class TestSanitizedLoopback:
    def test_clean_transfer_zero_violations(self):
        result, stats, sanitizer = _sanitized_loopback("cubic", 200_000)
        assert result.bytes_acked == 200_000
        assert stats.complete
        assert sanitizer.audits > 0
        assert sanitizer.violations == 0

    def test_lossy_transfer_zero_violations(self):
        from repro.netio import ImpairmentProfile

        result, stats, sanitizer = _sanitized_loopback(
            "libra:cubic", 300_000,
            impairment=ImpairmentProfile(loss=0.02, delay=0.01, seed=1))
        assert stats.complete and result.bytes_acked == 300_000
        assert sanitizer.violations == 0


class TestAckWindowInvariants:
    def _sender(self, sends=2):
        sender = SRSender(window=64)
        for i in range(sends):
            sender.register_send(b"x" * 100, now=0.01 * i)
        return sender

    def test_ack_beyond_sent_detected(self):
        with activate(SimSanitizer()):
            sender = self._sender(sends=2)
        # cumulative ack for 3 packets when only 2 were ever sent
        with pytest.raises(InvariantViolation) as ei:
            sender.on_ack(AckPacket(cum_ack=3, echo_seq=0,
                                    delivered_bytes=300, sack_blocks=()),
                          now=0.1)
        assert ei.value.invariant == "netio.ack_beyond_sent"
        assert sender.base == 0  # window untouched: no silent corruption

    def test_sack_beyond_sent_detected(self):
        with activate(SimSanitizer()):
            sender = self._sender(sends=2)
        with pytest.raises(InvariantViolation) as ei:
            sender.on_ack(AckPacket(cum_ack=0, echo_seq=0,
                                    delivered_bytes=0,
                                    sack_blocks=((5, 7),)),
                          now=0.1)
        assert ei.value.invariant == "netio.sack_beyond_sent"

    def test_stale_wrapped_ack_is_not_a_violation(self):
        # An old duplicate ACK "behind" base wraps to a huge forward
        # distance on the ring; it must be ignored, never flagged.
        with activate(SimSanitizer()):
            sender = SRSender(window=64, initial_seq=10)
        sender.register_send(b"x" * 100, now=0.0)
        outcome = sender.on_ack(
            AckPacket(cum_ack=(10 - 3) % SEQ_MOD, echo_seq=0,
                      delivered_bytes=0, sack_blocks=()), now=0.1)
        assert outcome.duplicate
        assert sender.base == 10

    def test_valid_acks_pass_and_audit(self):
        with activate(SimSanitizer()) as sanitizer:
            sender = self._sender(sends=2)
        sender.on_ack(AckPacket(cum_ack=2, echo_seq=1, delivered_bytes=200,
                                sack_blocks=()), now=0.1)
        assert sender.base == 2
        assert sanitizer.checks > 0
        assert sanitizer.violations == 0


class TestRxBufferInvariants:
    def test_corrupted_buffered_bytes_detected(self):
        with activate(SimSanitizer()) as sanitizer:
            receiver = SRReceiver(max_buffer_bytes=10_000)
        receiver.buffered_bytes += 512  # drift the cached counter
        with pytest.raises(InvariantViolation) as ei:
            sanitizer.audit_rx(receiver)
        assert ei.value.invariant == "netio.rx_accounting"

    def test_cap_breach_detected(self):
        with activate(SimSanitizer()) as sanitizer:
            receiver = SRReceiver(max_buffer_bytes=100)
        receiver._held[5] = b"y" * 200  # past the hole, over the cap
        receiver.buffered_bytes = 200.0
        with pytest.raises(InvariantViolation) as ei:
            sanitizer.audit_rx(receiver)
        assert ei.value.invariant == "netio.rx_cap"
