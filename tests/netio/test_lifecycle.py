"""Session lifecycle and overload protection: the deadline wheel, SYN
admission, idle reaping, drain, and the client's structured fail-fast
paths (RST handling, RTO give-up, handshake retry budget)."""

import asyncio

import pytest

from repro.netio import (DeadlineWheel, NetioClient, NetioServer,
                         ServerLimits, TransferAbort, validate_syn_meta)
from repro.netio.framing import (RST, SYN, SYNACK, AckPacket, ControlPacket,
                                 DataPacket, decode, encode_ack,
                                 encode_control, seq_add)
from repro.netio.lifecycle import (RST_BAD_SYN, RST_DRAIN_DEADLINE,
                                   RST_DRAINING, RST_IDLE_EXPIRED,
                                   RST_NO_SESSION, RST_SESSION_CAP)
from repro.netio.impairment import ImpairmentProfile
from repro.registry import make_controller

TINY = ServerLimits(max_sessions=4, idle_timeout=0.3,
                    session_buffer_bytes=64 * 1024, drain_deadline=2.0)

#: generous wall budget for "the reaper fired": idle timeout + wheel
#: slack + scheduler slack
REAP_WAIT = TINY.idle_timeout + 2 * TINY.reap_granularity + 1.0


class TestServerLimits:
    def test_defaults_valid(self):
        limits = ServerLimits()
        assert limits.max_sessions > 0 and limits.idle_timeout > 0

    @pytest.mark.parametrize("kwargs", [
        {"max_sessions": 0}, {"idle_timeout": 0.0},
        {"session_buffer_bytes": -1}, {"drain_deadline": 0},
        {"max_meta_bytes": 0},
    ])
    def test_non_positive_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServerLimits(**kwargs)

    def test_reap_granularity_bounds(self):
        assert ServerLimits(idle_timeout=0.05).reap_granularity == \
            pytest.approx(0.02)
        assert ServerLimits(idle_timeout=100.0).reap_granularity == \
            pytest.approx(0.5)
        assert ServerLimits(idle_timeout=1.6).reap_granularity == \
            pytest.approx(0.2)


class TestDeadlineWheel:
    def test_expires_only_after_deadline(self):
        wheel = DeadlineWheel(granularity=0.1)
        wheel.schedule("a", 1.0)
        assert wheel.expire(0.99) == []
        assert "a" in wheel
        # One slot of lateness is allowed; 1.2 is past slot(1.0)+1.
        assert wheel.expire(1.2) == ["a"]
        assert "a" not in wheel and len(wheel) == 0

    def test_cancel_prevents_expiry(self):
        wheel = DeadlineWheel(granularity=0.1)
        wheel.schedule("a", 0.5)
        wheel.cancel("a")
        assert wheel.expire(2.0) == []

    def test_reschedule_later_is_lazy_but_honored(self):
        wheel = DeadlineWheel(granularity=0.1)
        wheel.schedule("a", 0.5)
        wheel.schedule("a", 5.0)           # stale bucket entry remains
        assert wheel.expire(1.0) == []     # old slot swept, key re-bucketed
        assert "a" in wheel
        assert wheel.expire(5.2) == ["a"]

    def test_touch_moves_deadline_without_new_bucket(self):
        wheel = DeadlineWheel(granularity=0.1)
        wheel.schedule("a", 0.5)
        for t in range(1, 50):             # activity keeps pushing it out
            wheel.touch("a", 0.5 + t * 0.1)
        assert wheel.expire(4.0) == []
        assert wheel.expire(6.0) == ["a"]

    def test_touch_on_untracked_key_schedules(self):
        wheel = DeadlineWheel(granularity=0.1)
        wheel.touch("a", 0.3)
        assert wheel.expire(0.6) == ["a"]

    def test_many_keys_expire_in_one_sweep(self):
        wheel = DeadlineWheel(granularity=0.1)
        for i in range(100):
            wheel.schedule(i, 1.0 + (i % 7) * 0.01)
        assert sorted(wheel.expire(2.0)) == list(range(100))

    def test_bad_granularity(self):
        with pytest.raises(ValueError):
            DeadlineWheel(granularity=0.0)


class TestValidateSynMeta:
    LIMITS = ServerLimits()

    def test_honest_handshake_passes(self):
        meta = {"bytes": 1_048_576, "mss": 1200, "cca": "libra:cubic",
                "isn": 77}
        assert validate_syn_meta(meta, self.LIMITS) is None

    def test_empty_meta_passes(self):
        assert validate_syn_meta({}, self.LIMITS) is None

    @pytest.mark.parametrize("meta", [
        {"bytes": "1048576"},          # the str >= float crash vector
        {"bytes": -1},
        {"bytes": True},
        {"isn": "abc"},                # the int("abc") crash vector
        {"isn": -5},
        {"isn": 1 << 16},
        {"mss": 0},
        {"mss": 70_000},
        {"mss": "big"},
        {"cca": 7},
    ])
    def test_hostile_fields_refused(self, meta):
        assert validate_syn_meta(meta, self.LIMITS) is not None

    def test_oversized_meta_refused(self):
        meta = {"pad": "x" * (self.LIMITS.max_meta_bytes + 1)}
        assert validate_syn_meta(meta, self.LIMITS) is not None


# -- integration helpers -----------------------------------------------------

class RawPeer(asyncio.DatagramProtocol):
    """Sends arbitrary frames at a server; queues decoded replies."""

    def __init__(self):
        self.transport = None
        self.inbox = asyncio.Queue()

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        self.inbox.put_nowait(decode(data))

    async def reply(self, timeout=2.0):
        return await asyncio.wait_for(self.inbox.get(), timeout)

    async def rst_reason(self, timeout=2.0):
        while True:
            packet = await self.reply(timeout)
            if isinstance(packet, ControlPacket) and packet.ptype == RST:
                return packet.meta.get("reason")


async def open_peer(host, port):
    loop = asyncio.get_running_loop()
    _, peer = await loop.create_datagram_endpoint(
        RawPeer, remote_addr=(host, port))
    return peer


class ScriptedServer(asyncio.DatagramProtocol):
    """Failure-injection 'server': completes the handshake, then ACKs
    the first ``ack_first`` data packets and afterwards either goes
    silent or answers data with an RST."""

    def __init__(self, ack_first=0, rst_reason=None):
        self.ack_first = ack_first
        self.rst_reason = rst_reason
        self.transport = None
        self.data_seen = 0

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        packet = decode(data)
        if isinstance(packet, ControlPacket) and packet.ptype == SYN:
            self.transport.sendto(encode_control(SYNACK, packet.seq), addr)
        elif isinstance(packet, DataPacket):
            self.data_seen += 1
            if self.data_seen <= self.ack_first:
                self.transport.sendto(
                    encode_ack(seq_add(packet.seq), packet.seq,
                               len(packet.payload)), addr)
            elif self.rst_reason is not None:
                self.transport.sendto(
                    encode_control(RST, 0, {"reason": self.rst_reason}),
                    addr)


async def start_scripted(**kwargs):
    loop = asyncio.get_running_loop()
    transport, proto = await loop.create_datagram_endpoint(
        lambda: ScriptedServer(**kwargs), local_addr=("127.0.0.1", 0))
    host, port = transport.get_extra_info("sockname")[:2]
    return transport, proto, host, port


async def wait_until(predicate, timeout, poll=0.01):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(poll)
    return predicate()


def syn(meta=None, seq=0):
    return encode_control(SYN, seq, meta if meta is not None
                          else {"bytes": 1000, "isn": seq})


# -- server-side lifecycle ---------------------------------------------------

class TestIdleReaping:
    def test_half_open_session_reaped_with_stats(self):
        async def run():
            server = NetioServer(limits=TINY)
            host, port = await server.start()
            peer = await open_peer(host, port)
            try:
                peer.send = peer.transport.sendto
                peer.send(syn())
                assert isinstance(await peer.reply(), ControlPacket)
                assert server.live_sessions == 1
                assert await wait_until(
                    lambda: server.live_sessions == 0, REAP_WAIT)
                assert await peer.rst_reason() == RST_IDLE_EXPIRED
                stats = await server.serve_one(timeout=1.0)
                assert not stats.complete
                assert stats.aborted == RST_IDLE_EXPIRED
                # Satellite 1: aborted sessions have sane timing numbers.
                assert stats.finished_at > stats.started_at
                assert 0.0 < stats.duration < REAP_WAIT
                assert stats.goodput_bps == 0.0
                assert server.sessions_reaped == 1
            finally:
                peer.transport.close()
                await server.close()

        asyncio.run(run())

    def test_activity_defers_the_reaper(self):
        async def run():
            server = NetioServer(limits=TINY)
            host, port = await server.start()
            peer = await open_peer(host, port)
            try:
                peer.transport.sendto(syn())
                await peer.reply()
                # Keep the session warm past 2x the idle timeout.
                for _ in range(10):
                    await asyncio.sleep(TINY.idle_timeout / 4)
                    peer.transport.sendto(syn())   # dup SYN = activity
                assert server.live_sessions == 1
                assert server.sessions_reaped == 0
            finally:
                peer.transport.close()
                await server.close()

        asyncio.run(run())


class TestAdmissionControl:
    def test_session_cap_refused_with_rst(self):
        async def run():
            limits = ServerLimits(max_sessions=2, idle_timeout=5.0)
            server = NetioServer(limits=limits)
            host, port = await server.start()
            peers = [await open_peer(host, port) for _ in range(3)]
            try:
                for peer in peers:
                    peer.transport.sendto(syn())
                await wait_until(lambda: server.sessions_rejected >= 1, 2.0)
                assert server.live_sessions == 2
                assert server.sessions_rejected == 1
                assert await peers[2].rst_reason() == RST_SESSION_CAP
            finally:
                for peer in peers:
                    peer.transport.close()
                await server.close()

        asyncio.run(run())

    @pytest.mark.parametrize("meta", [
        {"bytes": "1048576"},
        {"isn": "abc"},
        {"pad": "x" * 2000},
    ])
    def test_hostile_syn_refused_with_bad_syn_rst(self, meta):
        async def run():
            server = NetioServer(limits=TINY)
            host, port = await server.start()
            peer = await open_peer(host, port)
            try:
                peer.transport.sendto(syn(meta))
                assert await peer.rst_reason() == RST_BAD_SYN
                assert server.live_sessions == 0
                assert server.sessions_rejected == 1
            finally:
                peer.transport.close()
                await server.close()

        asyncio.run(run())

    def test_duplicate_syn_refreshes_not_duplicates(self):
        async def run():
            server = NetioServer(limits=TINY)
            host, port = await server.start()
            peer = await open_peer(host, port)
            try:
                peer.transport.sendto(syn())
                first = await peer.reply()
                peer.transport.sendto(syn())
                second = await peer.reply()
                assert first.ptype == second.ptype == SYNACK
                assert server.sessions_opened == 1
                assert server.live_sessions == 1
            finally:
                peer.transport.close()
                await server.close()

        asyncio.run(run())

    def test_data_without_session_gets_no_session_rst(self):
        async def run():
            server = NetioServer(limits=TINY)
            host, port = await server.start()
            peer = await open_peer(host, port)
            try:
                from repro.netio.framing import encode_data

                peer.transport.sendto(encode_data(0, b"orphan"))
                assert await peer.rst_reason() == RST_NO_SESSION
            finally:
                peer.transport.close()
                await server.close()

        asyncio.run(run())


class TestDrain:
    def test_drain_refuses_new_syns(self):
        async def run():
            server = NetioServer(limits=TINY)
            host, port = await server.start()
            try:
                report = await server.drain()
                assert report["forced"] == 0
                peer = await open_peer(host, port)
                peer.transport.sendto(syn())
                assert await peer.rst_reason() == RST_DRAINING
                peer.transport.close()
            finally:
                await server.close()

        asyncio.run(run())

    def test_drain_deadline_force_resets_straggler(self):
        async def run():
            server = NetioServer(limits=TINY)
            host, port = await server.start()
            try:
                client = NetioClient(
                    make_controller("cubic", seed=1), bytes(1 << 20),
                    impairment=ImpairmentProfile(delay=0.03, seed=1), seed=1)
                task = asyncio.ensure_future(client.run(host, port,
                                                        timeout=30.0))
                assert await wait_until(
                    lambda: server.live_sessions == 1, 5.0)
                report = await server.drain(deadline=0.05)
                assert report["forced"] == 1
                with pytest.raises(TransferAbort) as info:
                    await task
                assert info.value.reason == f"rst:{RST_DRAIN_DEADLINE}"
                stats = await server.serve_one(timeout=1.0)
                assert stats.aborted == RST_DRAIN_DEADLINE
                assert not stats.complete
                assert stats.finished_at > stats.started_at
            finally:
                await server.close()

        asyncio.run(run())


# -- client-side fail-fast ---------------------------------------------------

class TestClientAborts:
    def test_rst_aborts_within_two_rtos(self):
        async def run():
            transport, _, host, port = await start_scripted(
                rst_reason="no-session")
            loop = asyncio.get_running_loop()
            try:
                client = NetioClient(make_controller("cubic", seed=1),
                                     bytes(100_000), seed=1)
                start = loop.time()
                with pytest.raises(TransferAbort) as info:
                    await client.run(host, port, timeout=30.0)
                elapsed = loop.time() - start
                assert info.value.reason == f"rst:{RST_NO_SESSION}"
                # Fail-fast budget: well under 2x the (1 s initial) RTO,
                # nowhere near the 30 s wall clock.
                assert elapsed < 2.0
            finally:
                transport.close()

        asyncio.run(run())

    def test_consecutive_rto_give_up(self):
        async def run():
            # ACK exactly one packet (establishing a tiny RTO), then
            # vanish: the client must abort, not grind the wall clock.
            transport, _, host, port = await start_scripted(ack_first=1)
            try:
                client = NetioClient(make_controller("cubic", seed=1),
                                     bytes(200_000), seed=1,
                                     max_consecutive_rtos=3)
                with pytest.raises(TransferAbort) as info:
                    await client.run(host, port, timeout=30.0)
                assert info.value.reason == "rto-exhausted"
                assert info.value.details["consecutive_rtos"] >= 3
            finally:
                transport.close()

        asyncio.run(run())

    def test_handshake_retry_budget(self, monkeypatch):
        from repro.netio import transport as transport_mod

        monkeypatch.setattr(transport_mod, "CONTROL_RETRIES", 2)
        monkeypatch.setattr(transport_mod, "CONTROL_TIMEOUT", 0.05)

        async def run():
            # A bound socket that never answers: the handshake must stop
            # after its retry budget with a structured reason.
            loop = asyncio.get_running_loop()
            sink, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, local_addr=("127.0.0.1", 0))
            host, port = sink.get_extra_info("sockname")[:2]
            try:
                client = NetioClient(make_controller("cubic", seed=1),
                                     b"x" * 1000, seed=1)
                with pytest.raises(TransferAbort) as info:
                    await client.run(host, port, timeout=30.0)
                assert info.value.reason == "handshake-timeout"
            finally:
                sink.close()

        asyncio.run(run())

    def test_abort_recorded_in_telemetry(self):
        from repro.telemetry import Recorder

        async def run():
            transport, _, host, port = await start_scripted(
                rst_reason="draining")
            recorder = Recorder()
            try:
                client = NetioClient(make_controller("cubic", seed=1),
                                     bytes(50_000), seed=1,
                                     recorder=recorder)
                with pytest.raises(TransferAbort):
                    await client.run(host, port, timeout=30.0)
            finally:
                transport.close()
            events = recorder.events("netio.abort")
            assert len(events) == 1
            assert events[0].fields["reason"] == f"rst:{RST_DRAINING}"

        asyncio.run(run())

    def test_abort_summary_is_json_ready(self):
        abort = TransferAbort("boom", reason="rto-exhausted",
                              consecutive_rtos=4)
        summary = abort.summary()
        assert summary["reason"] == "rto-exhausted"
        assert summary["consecutive_rtos"] == 4
        import json

        json.dumps(summary)   # must serialize cleanly for the CLI

    def test_bad_max_rtos_rejected(self):
        with pytest.raises(ValueError):
            NetioClient(make_controller("cubic"), b"x",
                        max_consecutive_rtos=0)


class TestSockErrors:
    def test_counted_and_recorded_not_swallowed(self):
        from repro.telemetry import Recorder

        async def run():
            recorder = Recorder()
            server = NetioServer(limits=TINY, recorder=recorder)
            host, port = await server.start()
            peer = await open_peer(host, port)
            try:
                # What the datagram endpoint delivers on ICMP errors.
                server._on_sock_error(ConnectionRefusedError("unreachable"))
                peer.transport.sendto(syn())
                await peer.reply()
                server._on_sock_error(ConnectionRefusedError("unreachable"))
                await wait_until(lambda: server.live_sessions == 0,
                                 REAP_WAIT)
                assert server.sock_errors == 2
                events = recorder.events("netio.sock_error")
                assert len(events) == 2
                assert events[0].fields["error"] == "ConnectionRefusedError"
                stats = await server.serve_one(timeout=1.0)
                # Only the error during the session is attributed to it.
                assert stats.sock_errors == 1
                assert stats.summary()["sock_errors"] == 1
            finally:
                peer.transport.close()
                await server.close()

        asyncio.run(run())

    def test_client_counter_in_result_summary(self):
        from repro.netio import NetioResult

        result = NetioResult(cca="cubic", bytes_total=10, bytes_acked=10.0,
                             duration=1.0, sent_packets=1, acked_packets=1,
                             lost_packets=0, retransmissions=0, srtt=0.1,
                             min_rtt=0.1, avg_rtt=0.1, mi_reports=1,
                             sock_errors=3)
        assert result.summary()["sock_errors"] == 3


class TestServerTelemetry:
    def test_session_lifecycle_events_recorded(self):
        from repro.telemetry import Recorder

        async def run():
            recorder = Recorder()
            server = NetioServer(limits=TINY, recorder=recorder)
            host, port = await server.start()
            peer = await open_peer(host, port)
            try:
                peer.transport.sendto(syn())
                await peer.reply()
                await wait_until(lambda: server.live_sessions == 0,
                                 REAP_WAIT)
            finally:
                peer.transport.close()
                await server.close()
            assert len(recorder.events("netio.session_open")) == 1
            assert len(recorder.events("netio.session_expired")) == 1
            assert len(recorder.events("netio.rst")) == 1
            closes = recorder.events("netio.session_close")
            assert len(closes) == 1
            assert closes[0].fields["aborted"] == RST_IDLE_EXPIRED

        asyncio.run(run())
