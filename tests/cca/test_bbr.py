"""Tests for the simplified BBR state machine."""

import pytest

from repro.cca.bbr import (Bbr, FULL_BW_COUNT, PROBE_BW_GAINS, STARTUP_GAIN)
from repro.simnet.packet import AckSample, LossSample


def _ack(now, rtt=0.05, delivery_rate=10e6, inflight=0.0):
    return AckSample(now=now, seq=0, rtt=rtt, min_rtt=rtt, srtt=rtt,
                     acked_bytes=1500, delivery_rate=delivery_rate,
                     inflight_bytes=inflight, sent_time=now - rtt)


@pytest.fixture
def bbr():
    b = Bbr()
    b.start(0.0, 1500)
    return b


def _drive_to_probe_bw(b, rate=10e6):
    t = 0.0
    # growing delivery rates keep STARTUP alive; then plateau
    for i in range(100):
        t += 0.01
        b.on_ack(_ack(t, delivery_rate=rate, inflight=0.0))
        if b.state == "PROBE_BW":
            break
    return t


class TestStartup:
    def test_initial_state_and_gain(self, bbr):
        assert bbr.state == "STARTUP"
        assert bbr.pacing_gain == STARTUP_GAIN

    def test_btlbw_tracks_max_delivery_rate(self, bbr):
        bbr.on_ack(_ack(0.1, delivery_rate=5e6))
        bbr.on_ack(_ack(0.2, delivery_rate=9e6))
        assert bbr.btlbw == 9e6

    def test_plateau_triggers_drain(self, bbr):
        for i in range(FULL_BW_COUNT + 2):
            bbr.on_ack(_ack(0.1 * (i + 1), delivery_rate=10e6, inflight=1e9))
        assert bbr.state in ("DRAIN", "PROBE_BW")

    def test_growth_keeps_startup(self, bbr):
        rate = 1e6
        for i in range(10):
            rate *= 1.5
            bbr.on_ack(_ack(0.1 * (i + 1), delivery_rate=rate))
        assert bbr.state == "STARTUP"


class TestDrainAndProbeBw:
    def test_reaches_probe_bw(self, bbr):
        _drive_to_probe_bw(bbr)
        assert bbr.state == "PROBE_BW"
        assert bbr.pacing_gain in PROBE_BW_GAINS

    def test_gain_cycles(self, bbr):
        t = _drive_to_probe_bw(bbr)
        seen = set()
        for i in range(40):
            t += 0.06  # > min_rtt advances the cycle
            bbr.on_ack(_ack(t, delivery_rate=10e6))
            seen.add(bbr.pacing_gain)
        assert 1.25 in seen and 0.75 in seen and 1.0 in seen

    def test_pacing_rate_uses_btlbw(self, bbr):
        _drive_to_probe_bw(bbr)
        assert bbr.pacing_rate() == pytest.approx(
            bbr.pacing_gain * bbr.btlbw)


class TestProbeRtt:
    def test_stale_min_rtt_enters_probe_rtt(self, bbr):
        t = _drive_to_probe_bw(bbr)
        bbr.min_rtt_stamp = t - 11.0  # stale beyond the 10 s window
        bbr.on_ack(_ack(t + 0.06, delivery_rate=10e6))
        assert bbr.state == "PROBE_RTT"
        assert bbr.cwnd() == 4 * 1500


class TestLossInsensitivity:
    def test_loss_does_not_change_rate(self, bbr):
        _drive_to_probe_bw(bbr)
        before = bbr.pacing_rate()
        bbr.on_loss(LossSample(now=10.0, seq=0, lost_bytes=1500,
                               sent_time=9.9, inflight_bytes=0.0))
        assert bbr.pacing_rate() == before


class TestLibraHooks:
    def test_adopt_rate_seeds_model(self, bbr):
        bbr.on_ack(_ack(0.1, delivery_rate=1e6))
        bbr.adopt_rate(20e6, srtt=0.05)
        assert bbr.btlbw == 20e6

    def test_rate_estimate_is_pacing_rate(self, bbr):
        bbr.on_ack(_ack(0.1, delivery_rate=8e6))
        assert bbr.rate_estimate(0.05) == bbr.pacing_rate()
