"""Tests for CUBIC."""

import pytest

from repro.cca.cubic import BETA, Cubic
from repro.simnet.packet import AckSample, LossSample


def _ack(now, rtt=0.05, acked=1500):
    return AckSample(now=now, seq=0, rtt=rtt, min_rtt=rtt, srtt=rtt,
                     acked_bytes=acked, delivery_rate=0.0,
                     inflight_bytes=0.0, sent_time=now - rtt)


def _loss(now):
    return LossSample(now=now, seq=0, lost_bytes=1500, sent_time=now - 0.05,
                      inflight_bytes=0.0)


@pytest.fixture
def cubic():
    c = Cubic()
    c.start(0.0, 1500)
    return c


class TestSlowStart:
    def test_doubles_per_rtt(self, cubic):
        initial = cubic.cwnd()
        for i in range(10):
            cubic.on_ack(_ack(0.01 * i))
        assert cubic.cwnd() == initial + 10 * 1500

    def test_exits_on_loss(self, cubic):
        cubic.on_loss(_loss(1.0))
        assert not cubic.in_slow_start()


class TestLossResponse:
    def test_multiplicative_decrease(self, cubic):
        cubic.cwnd_packets = 100.0
        cubic.ssthresh = 1.0  # out of slow start
        cubic.on_loss(_loss(1.0))
        assert cubic.cwnd_packets == pytest.approx(100 * BETA)

    def test_records_w_max(self, cubic):
        cubic.cwnd_packets = 100.0
        cubic.on_loss(_loss(1.0))
        assert cubic.w_max == pytest.approx(100.0)

    def test_fast_convergence_shrinks_w_max(self, cubic):
        cubic.cwnd_packets = 100.0
        cubic.on_loss(_loss(1.0))
        cubic.cwnd_packets = 60.0  # below previous w_max
        cubic.on_loss(_loss(2.0))
        assert cubic.w_max == pytest.approx(60.0 * (1 + BETA) / 2)

    def test_loss_burst_filtered(self, cubic):
        cubic.cwnd_packets = 100.0
        cubic.on_ack(_ack(1.0, rtt=0.1))
        cubic.on_loss(_loss(1.0))
        after_first = cubic.cwnd_packets
        cubic.on_loss(_loss(1.01))  # same RTT: ignored
        assert cubic.cwnd_packets == after_first


class TestCubicGrowth:
    def test_concave_recovery_towards_w_max(self, cubic):
        cubic.cwnd_packets = 100.0
        cubic.ssthresh = 1.0
        cubic.on_loss(_loss(1.0))
        start = cubic.cwnd_packets
        for i in range(200):
            cubic.on_ack(_ack(1.0 + 0.01 * i, rtt=0.05))
        assert start < cubic.cwnd_packets <= cubic.w_max * 1.2

    def test_convex_probing_beyond_w_max(self, cubic):
        cubic.cwnd_packets = 50.0
        cubic.ssthresh = 1.0
        cubic.w_max = 10.0  # window already above the last maximum
        growth = []
        for i in range(400):
            before = cubic.cwnd_packets
            cubic.on_ack(_ack(0.05 * i, rtt=0.05))
            growth.append(cubic.cwnd_packets - before)
        # growth accelerates in the convex region
        assert sum(growth[200:]) > sum(growth[:200])


class TestLibraHooks:
    def test_adopt_rate_sets_window(self, cubic):
        cubic.adopt_rate(12e6, srtt=0.1)
        assert cubic.cwnd() == pytest.approx(12e6 * 0.1 / 8)

    def test_rate_estimate_roundtrip(self, cubic):
        cubic.adopt_rate(12e6, srtt=0.1)
        assert cubic.rate_estimate(0.1) == pytest.approx(12e6)

    def test_adopt_rate_floors_at_min_cwnd(self, cubic):
        cubic.adopt_rate(1.0, srtt=0.001)
        assert cubic.cwnd() >= cubic.min_cwnd_bytes
