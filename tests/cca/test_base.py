"""Tests for the controller base classes."""

import pytest

from repro.cca.base import (Controller, FixedRateController, RateController,
                            WindowController)
from repro.simnet.packet import AckSample


def _ack(now=1.0, rtt=0.05, srtt=0.05, acked=1500):
    return AckSample(now=now, seq=0, rtt=rtt, min_rtt=rtt, srtt=srtt,
                     acked_bytes=acked, delivery_rate=0.0,
                     inflight_bytes=0.0, sent_time=now - rtt)


class TestController:
    def test_defaults_are_noops(self):
        c = Controller()
        c.start(0.0, 1500)
        c.on_ack(_ack())
        assert c.pacing_rate() is None
        assert c.cwnd() is None
        assert c.interval() is None

    def test_rate_estimate_requires_some_signal(self):
        with pytest.raises(NotImplementedError):
            Controller().rate_estimate(0.1)

    def test_rate_estimate_from_pacing(self):
        c = FixedRateController(2e6)
        assert c.rate_estimate(0.1) == 2e6

    def test_rate_estimate_from_cwnd(self):
        c = WindowController(initial_cwnd_packets=10)
        c.start(0.0, 1500)
        # 15000 bytes over 0.1s = 1.2 Mbps
        assert c.rate_estimate(0.1) == pytest.approx(15000 * 8 / 0.1)

    def test_adopt_rate_default_noop(self):
        c = FixedRateController(2e6)
        c.adopt_rate(5e6, 0.1)
        assert c.rate_estimate(0.1) == 2e6


class TestFixedRate:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedRateController(0.0)


class TestWindowController:
    def test_start_scales_to_mss(self):
        c = WindowController(initial_cwnd_packets=10)
        c.start(0.0, 9000)
        assert c.cwnd() == 10 * 9000

    def test_one_reduction_per_rtt(self):
        c = WindowController()
        c.start(0.0, 1500)
        c.on_ack(_ack(now=1.0, srtt=0.1))
        assert c.reduction_allowed(1.0)
        c.mark_reduction(1.0)
        assert not c.reduction_allowed(1.05)
        assert c.reduction_allowed(1.2)

    def test_min_cwnd_floor(self):
        c = WindowController()
        c.start(0.0, 1500)
        c.cwnd_bytes = 1.0
        assert c.cwnd() == 2 * 1500


class TestRateController:
    def test_set_rate_clamps(self):
        c = RateController(1e6)
        c.set_rate(1.0)
        assert c.rate_bps == RateController.MIN_RATE
        c.set_rate(1e12)
        assert c.rate_bps == RateController.MAX_RATE

    def test_pacing_rate_reflects_set_rate(self):
        c = RateController(1e6)
        c.set_rate(3e6)
        assert c.pacing_rate() == 3e6


def test_meter_attached():
    c = Controller()
    assert c.meter.counts["per_ack"] == 0.0
