"""Tests for the remaining classic CCAs (Vegas, Copa, Westwood, Illinois,
Sprout) — behavioural checks on their defining mechanisms."""

import pytest

from repro.cca import Copa, Illinois, NewReno, Sprout, Vegas, Westwood
from repro.simnet.packet import AckSample, IntervalReport, LossSample


def _ack(now, rtt=0.05, srtt=None, delivery_rate=0.0, acked=1500):
    return AckSample(now=now, seq=0, rtt=rtt, min_rtt=min(rtt, 0.05),
                     srtt=srtt or rtt, acked_bytes=acked,
                     delivery_rate=delivery_rate, inflight_bytes=0.0,
                     sent_time=now - rtt)


def _loss(now):
    return LossSample(now=now, seq=0, lost_bytes=1500, sent_time=now - 0.05,
                      inflight_bytes=0.0)


def _report(now, throughput=10e6, avg_rtt=0.05, min_rtt=0.05, loss=0.0,
            duration=0.02, acked=10):
    return IntervalReport(now=now, duration=duration, throughput=throughput,
                          send_rate=throughput, avg_rtt=avg_rtt,
                          min_rtt=min_rtt, rtt_gradient=0.0, loss_rate=loss,
                          acked_packets=acked, lost_packets=0,
                          sent_packets=acked)


class TestNewReno:
    def test_additive_increase_in_ca(self):
        c = NewReno()
        c.start(0.0, 1500)
        c.ssthresh = c.cwnd_bytes  # leave slow start
        before = c.cwnd_bytes
        # one full window of acks -> +1 MSS
        for i in range(int(before / 1500)):
            c.on_ack(_ack(0.01 * i))
        assert c.cwnd_bytes == pytest.approx(before + 1500, rel=0.05)

    def test_halves_on_loss(self):
        c = NewReno()
        c.start(0.0, 1500)
        c.cwnd_bytes = 60_000
        c.on_loss(_loss(1.0))
        assert c.cwnd_bytes == 30_000


class TestVegas:
    def test_grows_when_uncongested(self):
        c = Vegas()
        c.start(0.0, 1500)
        c.ssthresh = c.cwnd_bytes
        before = c.cwnd_bytes
        for i in range(10):
            c.on_ack(_ack(0.2 * i, rtt=0.05))  # rtt == base rtt: diff = 0
        assert c.cwnd_bytes > before

    def test_shrinks_with_queueing(self):
        c = Vegas()
        c.start(0.0, 1500)
        c.ssthresh = c.cwnd_bytes
        c.on_ack(_ack(0.0, rtt=0.05))  # establish base_rtt
        before = c.cwnd_bytes
        for i in range(1, 12):
            c.on_ack(_ack(0.2 * i, rtt=0.2, srtt=0.2))  # heavy queueing
        assert c.cwnd_bytes < before


class TestCopa:
    def test_velocity_doubles_with_consistent_direction(self):
        c = Copa()
        c.start(0.0, 1500)
        for i in range(60):
            c.on_ack(_ack(0.05 * i, rtt=0.05))  # no queueing -> increase
        assert c.velocity > 1.0

    def test_backs_off_at_high_queueing_delay(self):
        c = Copa()
        c.start(0.0, 1500)
        c.cwnd_bytes = 150_000
        c.on_ack(_ack(0.0, rtt=0.05))
        before = c.cwnd_bytes
        for i in range(1, 40):
            c.on_ack(_ack(0.05 * i, rtt=0.4, srtt=0.4))
        assert c.cwnd_bytes < before

    def test_loss_halves_window(self):
        c = Copa()
        c.start(0.0, 1500)
        c.cwnd_bytes = 80_000
        c.on_loss(_loss(1.0))
        assert c.cwnd_bytes == pytest.approx(40_000)


class TestWestwood:
    def test_bandwidth_estimate_ewma(self):
        c = Westwood()
        c.start(0.0, 1500)
        c.on_ack(_ack(0.1, delivery_rate=10e6))
        c.on_ack(_ack(0.2, delivery_rate=20e6))
        assert 10e6 < c.bw_est < 20e6

    def test_loss_sets_ssthresh_to_bdp(self):
        c = Westwood()
        c.start(0.0, 1500)
        for i in range(5):
            c.on_ack(_ack(0.1 * i, rtt=0.05, delivery_rate=16e6))
        c.on_loss(_loss(1.0))
        expected = c.bw_est * 0.05 / 8
        assert c.cwnd_bytes == pytest.approx(expected, rel=0.01)


class TestIllinois:
    def test_aggressive_alpha_near_empty_queue(self):
        c = Illinois()
        c.start(0.0, 1500)
        c.ssthresh = c.cwnd_bytes
        for i in range(10):
            c.on_ack(_ack(0.1 * i, rtt=0.05))
        # low delay -> alpha at (or near) the maximum
        assert c._alpha > 5.0

    def test_beta_grows_with_delay(self):
        c = Illinois()
        c.start(0.0, 1500)
        c.ssthresh = c.cwnd_bytes
        c.on_ack(_ack(0.0, rtt=0.05))
        for i in range(1, 10):
            c.on_ack(_ack(0.2 * i, rtt=0.3, srtt=0.3))
        assert c._beta > 0.3


class TestSprout:
    def test_rate_tracks_forecast(self):
        c = Sprout()
        c.start(0.0, 1500)
        for i in range(40):
            c.on_interval(_report(0.02 * i, throughput=8e6))
        assert c.rate_bps > 4e6

    def test_drains_without_feedback(self):
        c = Sprout(initial_rate_bps=5e6)
        c.start(0.0, 1500)
        c.on_interval(_report(0.02, acked=0))
        assert c.rate_bps < 5e6

    def test_backs_off_under_delay_budget_pressure(self):
        c = Sprout()
        c.start(0.0, 1500)
        for i in range(20):
            c.on_interval(_report(0.02 * i, throughput=8e6))
        high = c.rate_bps
        for i in range(20, 40):
            c.on_interval(_report(0.02 * i, throughput=8e6, avg_rtt=0.3,
                                  min_rtt=0.05))
        assert c.rate_bps < high
