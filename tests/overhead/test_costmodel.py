"""Tests for operation metering and the pseudo-CPU cost model."""

import pytest

from repro.cca.cubic import Cubic
from repro.learning.vivace import Vivace
from repro.overhead.costmodel import (CPU_BUDGET, WEIGHTS, controller_cost_units,
                                      cpu_utilization, memory_units)
from repro.overhead.meter import CostMeter


class TestMeter:
    def test_count_and_total(self):
        meter = CostMeter()
        meter.count("per_ack", 10)
        meter.count("nn_forward", 100)
        assert meter.total({"per_ack": 2.0, "nn_forward": 0.5}) == 70.0

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            CostMeter().count("quantum_ops")

    def test_merge(self):
        a, b = CostMeter(), CostMeter()
        a.count("per_ack", 5)
        b.count("per_ack", 7)
        a.merge(b)
        assert a.counts["per_ack"] == 12

    def test_reset(self):
        meter = CostMeter()
        meter.count("per_mi", 3)
        meter.reset()
        assert meter.counts["per_mi"] == 0.0


class TestCostModel:
    def test_cpu_utilization_bounded(self):
        c = Cubic()
        c.meter.count("per_ack", 1e12)
        assert cpu_utilization(c, 1.0) == 1.0

    def test_cpu_requires_positive_duration(self):
        with pytest.raises(ValueError):
            cpu_utilization(Cubic(), 0.0)

    def test_cost_units_use_weights(self):
        c = Cubic()
        c.meter.count("per_ack", 100)
        assert controller_cost_units(c) == 100 * WEIGHTS["per_ack"]

    def test_kernel_cheaper_than_userspace(self):
        kernel = Cubic()
        userspace = Vivace()
        kernel.meter.count("per_ack", 1000)
        userspace.meter.count("per_ack", 1000)
        userspace.meter.count("userspace_packet", 2000)
        assert controller_cost_units(userspace) > controller_cost_units(kernel)

    def test_budget_positive(self):
        assert CPU_BUDGET > 0


class TestMemoryModel:
    def test_kernel_smallest(self):
        assert memory_units(Cubic()) < memory_units(Vivace())

    def test_policy_adds_footprint(self):
        from repro.assets import load_policy
        from repro.learning.orca import Orca

        orca = Orca(load_policy("orca"))
        assert memory_units(orca) > memory_units(Cubic())
