"""Tests for the reward-function variants (Sec. 4.2, Tab. 3/4)."""

import pytest

from repro.env.features import Measurement, Normalizer
from repro.env.reward import RewardConfig, RewardFunction


def _m(throughput=50e6, avg_rtt=0.1, loss=0.0):
    return Measurement(throughput=throughput, send_rate=throughput,
                       avg_rtt=avg_rtt, latest_rtt=avg_rtt, min_rtt=0.1,
                       rtt_gradient=0.0, loss_rate=loss, ack_gap_ewma=0.001,
                       send_gap_ewma=0.001, sent_packets=10, acked_packets=10,
                       rate=throughput)


@pytest.fixture
def norm():
    return Normalizer(init_max_rate=100e6, init_min_delay=0.1)


class TestRawReward:
    def test_higher_throughput_higher_reward(self, norm):
        r = RewardFunction(RewardConfig(use_delta=False))
        assert r(_m(throughput=80e6), norm) > r(_m(throughput=40e6), norm)

    def test_delay_penalized(self, norm):
        r = RewardFunction(RewardConfig(use_delta=False))
        assert r(_m(avg_rtt=0.3), norm) < r(_m(avg_rtt=0.1), norm)

    def test_loss_penalized_when_included(self, norm):
        r = RewardFunction(RewardConfig(use_delta=False, include_loss=True))
        assert r(_m(loss=0.1), norm) < r(_m(loss=0.0), norm)

    def test_loss_ignored_when_excluded(self, norm):
        r = RewardFunction(RewardConfig(use_delta=False, include_loss=False))
        assert r(_m(loss=0.5), norm) == r(_m(loss=0.0), norm)

    def test_weights_scale_terms(self, norm):
        heavy = RewardFunction(RewardConfig(w3=100.0, use_delta=False))
        light = RewardFunction(RewardConfig(w3=1.0, use_delta=False))
        assert heavy(_m(loss=0.1), norm) < light(_m(loss=0.1), norm)


class TestDeltaReward:
    def test_first_delta_is_zero(self, norm):
        r = RewardFunction(RewardConfig(use_delta=True))
        assert r(_m(), norm) == 0.0

    def test_delta_tracks_improvement(self, norm):
        r = RewardFunction(RewardConfig(use_delta=True))
        r(_m(throughput=40e6), norm)
        assert r(_m(throughput=80e6), norm) > 0
        assert r(_m(throughput=40e6), norm) < 0

    def test_steady_state_gives_zero(self, norm):
        r = RewardFunction(RewardConfig(use_delta=True))
        r(_m(), norm)
        assert r(_m(), norm) == pytest.approx(0.0)

    def test_reset_clears_history(self, norm):
        r = RewardFunction(RewardConfig(use_delta=True))
        r(_m(throughput=40e6), norm)
        r.reset()
        assert r(_m(throughput=80e6), norm) == 0.0
