"""Tests for the action-space designs (Sec. 4.2, Fig. 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.env.actions import (ACTION_SPACES, AiadActions, MAX_RATE, MIN_RATE,
                               MimdAuroraActions, MimdOrcaActions)


class TestAiad:
    def test_additive_step(self):
        a = AiadActions(scale=5.0)
        assert a.apply(10e6, 2.0) == pytest.approx(12e6)
        assert a.apply(10e6, -2.0) == pytest.approx(8e6)

    def test_clip_to_scale(self):
        a = AiadActions(scale=1.0)
        assert a.apply(10e6, 100.0) == pytest.approx(11e6)


class TestMimdAurora:
    def test_asymmetric_update(self):
        a = MimdAuroraActions(scale=10.0, delta=0.025)
        up = a.apply(10e6, 4.0)
        down = a.apply(10e6, -4.0)
        assert up == pytest.approx(10e6 * 1.1)
        assert down == pytest.approx(10e6 / 1.1)

    def test_inverse_roundtrip(self):
        a = MimdAuroraActions(scale=10.0)
        assert a.apply(a.apply(10e6, 4.0), -4.0) == pytest.approx(10e6)


class TestMimdOrca:
    def test_exponential_update(self):
        a = MimdOrcaActions(scale=2.0)
        assert a.apply(10e6, 1.0) == pytest.approx(20e6)
        assert a.apply(10e6, -1.0) == pytest.approx(5e6)

    def test_clip(self):
        a = MimdOrcaActions(scale=2.0)
        assert a.apply(10e6, 50.0) == pytest.approx(40e6)


def test_registry_complete():
    assert set(ACTION_SPACES) == {"aiad", "mimd-aurora", "mimd-orca"}


def test_scale_must_be_positive():
    with pytest.raises(ValueError):
        MimdOrcaActions(scale=0.0)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(["aiad", "mimd-aurora", "mimd-orca"]),
       st.floats(MIN_RATE, MAX_RATE), st.floats(-100.0, 100.0),
       st.floats(0.5, 10.0))
def test_rates_stay_bounded(kind, rate, action, scale):
    space = ACTION_SPACES[kind](scale=scale)
    out = space.apply(rate, action)
    assert MIN_RATE <= out <= MAX_RATE
