"""Property-based invariants of the fluid environment and trace stack."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.env.actions import MimdOrcaActions
from repro.env.fluidenv import FluidEnvConfig, FluidLinkEnv
from repro.simnet.trace import PiecewiseTrace
from repro.units import mbps


@settings(max_examples=30, deadline=None)
@given(capacity=st.floats(5e6, 200e6), rtt=st.floats(0.01, 0.2),
       buffer=st.floats(10e3, 2e6), rate_mult=st.floats(0.1, 4.0),
       steps=st.integers(1, 30))
def test_fluid_env_conservation(capacity, rtt, buffer, rate_mult, steps):
    """delivered <= offered and delivered <= capacity, queue bounded."""
    env = FluidLinkEnv(FluidEnvConfig(
        seed=1, fixed_capacity=capacity, fixed_rtt=rtt, fixed_buffer=buffer,
        fixed_loss=0.0, episode_steps=1000), MimdOrcaActions(1.0))
    env.reset()
    env.rate = capacity * rate_mult
    for _ in range(steps):
        _, _, _, info = env.step(np.zeros(1))
        assert info["throughput"] <= capacity * (1 + 1e-9)
        assert 0.0 <= env.queue <= buffer + 1e-6
        assert info["avg_rtt"] >= rtt - 1e-12
        assert 0.0 <= info["loss_rate"] <= 1.0


@settings(max_examples=30, deadline=None)
@given(rates=st.lists(st.floats(1.0, 100.0), min_size=1, max_size=8),
       t0=st.floats(0.0, 20.0), span=st.floats(0.01, 20.0))
def test_trace_capacity_additive(rates, t0, span):
    """capacity(t0,t2) == capacity(t0,t1) + capacity(t1,t2)."""
    times = [i * 0.5 for i in range(len(rates))]
    trace = PiecewiseTrace(times, [mbps(r) for r in rates], loop=True)
    t1 = t0 + span / 2
    t2 = t0 + span
    total = trace.capacity_bytes(t0, t2)
    split = trace.capacity_bytes(t0, t1) + trace.capacity_bytes(t1, t2)
    assert abs(total - split) <= 1e-6 * max(total, 1.0)


@settings(max_examples=30, deadline=None)
@given(rates=st.lists(st.floats(1.0, 100.0), min_size=2, max_size=6),
       t=st.floats(0.0, 10.0))
def test_trace_rate_consistent_with_capacity(rates, t):
    """Instantaneous rate equals the derivative of cumulative capacity."""
    times = [i * 1.0 for i in range(len(rates))]
    trace = PiecewiseTrace(times, [mbps(r) for r in rates], loop=True)
    eps = 1e-4
    # avoid sampling exactly on a breakpoint
    if abs((t % 1.0)) < 2 * eps or abs((t % 1.0) - 1.0) < 2 * eps:
        t += 0.1
    derivative = trace.capacity_bytes(t, t + eps) * 8.0 / eps
    assert abs(derivative - trace.rate_at(t)) <= 1e-3 * trace.rate_at(t)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100))
def test_episode_reset_restores_invariants(seed):
    env = FluidLinkEnv(FluidEnvConfig(seed=seed), MimdOrcaActions(1.0))
    for _ in range(3):
        obs = env.reset()
        assert env.queue == 0.0
        assert np.all(np.isfinite(obs))
        assert env.capacity >= 10e6 - 1e-6
