"""Tests for the fluid-model training environment."""

import numpy as np
import pytest

from repro.env.actions import MimdOrcaActions
from repro.env.fluidenv import FluidEnvConfig, FluidLinkEnv, evaluate_policy


def _fixed_env(capacity=20e6, rtt=0.05, buffer=125_000, loss=0.0, steps=64,
               seed=0):
    return FluidLinkEnv(FluidEnvConfig(
        seed=seed, episode_steps=steps, fixed_capacity=capacity,
        fixed_rtt=rtt, fixed_buffer=buffer, fixed_loss=loss),
        MimdOrcaActions(1.0))


class HoldPolicy:
    """Minimal policy protocol: always outputs the same action."""

    def __init__(self, action=0.0):
        self.action = action

    def act(self, obs, rng, deterministic=False):
        return np.array([self.action]), 0.0, 0.0


class TestDynamics:
    def test_underload_no_queue_no_loss(self):
        env = _fixed_env()
        env.reset()
        env.rate = 10e6
        _, _, _, info = env.step(np.zeros(1))
        assert info["avg_rtt"] == pytest.approx(0.05)
        assert info["loss_rate"] == 0.0
        assert info["throughput"] == pytest.approx(10e6)

    def test_overload_builds_queue_and_delay(self):
        env = _fixed_env()
        env.reset()
        env.rate = 40e6
        _, _, _, info1 = env.step(np.zeros(1))
        _, _, _, info2 = env.step(np.zeros(1))
        assert env.queue > 0
        assert info2["avg_rtt"] > info1["avg_rtt"] > 0.05

    def test_buffer_overflow_counts_loss(self):
        env = _fixed_env(buffer=10_000)
        env.reset()
        env.rate = 80e6
        for _ in range(4):
            _, _, _, info = env.step(np.zeros(1))
        assert info["loss_rate"] > 0.2
        assert env.queue <= 10_000

    def test_stochastic_loss_applied(self):
        env = _fixed_env(loss=0.1)
        env.reset()
        env.rate = 10e6
        _, _, _, info = env.step(np.zeros(1))
        assert info["loss_rate"] == pytest.approx(0.1)

    def test_throughput_capped_by_capacity(self):
        env = _fixed_env(capacity=20e6)
        env.reset()
        env.rate = 200e6
        _, _, _, info = env.step(np.zeros(1))
        assert info["throughput"] <= 20e6 * (1 + 1e-9)


class TestEpisodes:
    def test_done_after_episode_steps(self):
        env = _fixed_env(steps=5)
        env.reset()
        dones = [env.step(np.zeros(1))[2] for _ in range(5)]
        assert dones == [False] * 4 + [True]

    def test_reset_resamples_random_env(self):
        env = FluidLinkEnv(FluidEnvConfig(seed=1), MimdOrcaActions(1.0))
        env.reset()
        a = env.capacity
        env.reset()
        assert env.capacity != a

    def test_deterministic_across_instances(self):
        def capacities(seed):
            env = FluidLinkEnv(FluidEnvConfig(seed=seed), MimdOrcaActions(1.0))
            out = []
            for _ in range(3):
                env.reset()
                out.append(env.capacity)
            return out

        assert capacities(5) == capacities(5)
        assert capacities(5) != capacities(6)

    def test_observation_dims(self):
        env = _fixed_env()
        obs = env.reset()
        assert obs.shape == (env.obs_dim,)
        obs2, _, _, _ = env.step(np.zeros(1))
        assert obs2.shape == (env.obs_dim,)

    def test_episode_summary_averages(self):
        env = _fixed_env()
        env.reset()
        env.rate = 10e6
        for _ in range(4):
            env.step(np.zeros(1))
        summary = env.episode_summary()
        assert summary["throughput_mbps"] == pytest.approx(10.0, rel=0.05)
        assert summary["capacity_mbps"] == pytest.approx(20.0)


class TestEvaluatePolicy:
    def test_hold_policy_keeps_rate(self):
        env = _fixed_env()
        result = evaluate_policy(env, HoldPolicy(0.0), steps=32)
        assert set(result) == {"throughput_mbps", "latency_ms", "loss_rate",
                               "avg_reward"}

    def test_increase_policy_reaches_capacity(self):
        env = _fixed_env(capacity=20e6)
        result = evaluate_policy(env, HoldPolicy(1.0), steps=64)
        # doubling every MI pins the rate at the clip; throughput ~= capacity
        assert result["throughput_mbps"] == pytest.approx(20.0, rel=0.1)
        assert result["loss_rate"] > 0.3
