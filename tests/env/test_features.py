"""Tests for the Tab. 1 state-feature library."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.env.features import (CANDIDATES, FEATURE_CLIP, FeatureSet,
                                Measurement, Normalizer, STATE_SETS,
                                StateBuilder, TAB2_VARIANTS)


def _measurement(throughput=10e6, rate=12e6, avg_rtt=0.06, min_rtt=0.05,
                 gradient=0.0, loss=0.0, sent=10, acked=10):
    return Measurement(throughput=throughput, send_rate=rate, avg_rtt=avg_rtt,
                       latest_rtt=avg_rtt, min_rtt=min_rtt,
                       rtt_gradient=gradient, loss_rate=loss,
                       ack_gap_ewma=0.001, send_gap_ewma=0.001,
                       sent_packets=sent, acked_packets=acked, rate=rate)


class TestFeatureSet:
    def test_all_candidates_extract(self):
        fs = FeatureSet(CANDIDATES)
        norm = Normalizer()
        vec = fs.extract(_measurement(), norm)
        assert vec.shape == (fs.dim,)
        assert fs.dim == len(CANDIDATES) + 1  # (vi) contributes two

    def test_unknown_candidate_rejected(self):
        with pytest.raises(KeyError):
            FeatureSet("iv x")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            FeatureSet("iv iv")

    def test_plus_minus(self):
        base = FeatureSet("iv vii")
        assert base.plus("ix").keys == ("iv", "vii", "ix")
        assert base.minus("vii").keys == ("iv",)
        with pytest.raises(KeyError):
            base.minus("ix")

    def test_specific_values(self):
        norm = Normalizer(init_max_rate=20e6)
        m = _measurement(throughput=10e6, rate=12e6, loss=0.03,
                         gradient=0.2, sent=12, acked=10)
        fs = FeatureSet("iv v vii viii ix")
        vec = fs.extract(m, norm)
        assert vec[0] == pytest.approx(12e6 / 20e6)   # (iv) rate
        assert vec[1] == pytest.approx(1.2)           # (v) sent/acked
        assert vec[2] == pytest.approx(0.03)          # (vii) loss
        assert vec[3] == pytest.approx(0.2)           # (viii) gradient
        assert vec[4] == pytest.approx(10e6 / 20e6)   # (ix) delivery


class TestNormalizer:
    def test_max_tracks_throughput_not_send_rate(self):
        norm = Normalizer(init_max_rate=1e6)
        norm.observe(_measurement(throughput=5e6, rate=50e6))
        assert norm.max_rate == 5e6

    def test_min_delay_tracks_min_rtt(self):
        norm = Normalizer(init_min_delay=1.0)
        norm.observe(_measurement(min_rtt=0.02))
        assert norm.min_delay == 0.02

    def test_rate_clipped(self):
        norm = Normalizer(init_max_rate=1e6)
        assert norm.rate(100e6) == 10.0


class TestFiniteGuards:
    """Pathological measurements (blackouts, zero-ACK intervals) must never
    leak NaN/inf into the policy input."""

    def test_inf_rtt_measurement_stays_finite(self):
        fs = FeatureSet(CANDIDATES)
        norm = Normalizer()
        m = _measurement(avg_rtt=float("inf"), min_rtt=float("inf"),
                         gradient=float("nan"))
        vec = fs.extract(m, norm)
        assert np.all(np.isfinite(vec))
        assert np.all(np.abs(vec) <= FEATURE_CLIP)

    def test_inf_throughput_does_not_poison_normalizer(self):
        norm = Normalizer(init_max_rate=1e6)
        norm.observe(_measurement(throughput=float("inf"),
                                  min_rtt=float("nan")))
        assert np.isfinite(norm.max_rate)
        assert np.isfinite(norm.min_delay)

    def test_extreme_ratio_clipped(self):
        fs = FeatureSet("v")   # sent/acked ratio
        vec = fs.extract(_measurement(sent=10**9, acked=1), Normalizer())
        assert vec[0] == FEATURE_CLIP

    def test_builder_state_finite_under_faults(self):
        builder = StateBuilder(FeatureSet(CANDIDATES), history=3)
        for m in (_measurement(),
                  _measurement(avg_rtt=float("inf"), throughput=0.0),
                  _measurement(gradient=float("-inf"), loss=1.0)):
            state = builder.push(m)
            assert np.all(np.isfinite(state))


class TestStateSets:
    def test_paper_sets_present(self):
        for name in ("aurora", "rl-tcp", "pcc", "remy", "drl-cc", "orca",
                     "baseline", "libra"):
            assert name in STATE_SETS

    def test_libra_is_baseline_minus_vi(self):
        assert STATE_SETS["libra"] == STATE_SETS["baseline"].minus("vi")

    def test_tab2_variant_dims(self):
        base = TAB2_VARIANTS["Baseline"]
        assert TAB2_VARIANTS["-(vi)"].dim == base.dim - 2
        assert TAB2_VARIANTS["+(i)(ii)"].dim == base.dim + 2
        assert TAB2_VARIANTS["-(ix)"].dim == base.dim - 1


class TestStateBuilder:
    def test_zero_padding_before_history_fills(self):
        builder = StateBuilder(FeatureSet("iv"), history=4)
        state = builder.push(_measurement())
        assert state.shape == (4,)
        assert np.count_nonzero(state[:3]) == 0

    def test_history_shifts(self):
        builder = StateBuilder(FeatureSet("vii"), history=3)
        for loss in (0.1, 0.2, 0.3, 0.4):
            state = builder.push(_measurement(loss=loss))
        assert state.tolist() == pytest.approx([0.2, 0.3, 0.4])

    def test_reset_clears_frames(self):
        builder = StateBuilder(FeatureSet("vii"), history=2)
        builder.push(_measurement(loss=0.5))
        builder.reset()
        assert np.all(builder.state() == 0.0)

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            StateBuilder(FeatureSet("iv"), history=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=12),
           st.integers(1, 6))
    def test_state_dim_invariant(self, losses, history):
        builder = StateBuilder(FeatureSet("vii viii"), history=history)
        for loss in losses:
            state = builder.push(_measurement(loss=loss))
            assert state.shape == (2 * history,)
            assert np.all(np.isfinite(state))
