#!/usr/bin/env python3
"""AQM in the network vs Libra at the endpoint (paper Sec. 2).

Classic CCAs can only get low queueing delay with help from the network
(an AQM like CoDel deployed on the bottleneck device).  Libra reaches a
similar operating point purely end-to-end.  This example runs CUBIC over
a droptail and a CoDel bottleneck, and C-Libra over plain droptail, on a
deep-buffered 24 Mbps link.
"""

from repro import Dumbbell, make_controller, wired_trace

DURATION = 20.0
RTT = 0.03
BUFFER_BYTES = 600_000  # deep buffer: ~8 BDP


def run(cca: str, aqm: str) -> tuple[float, float]:
    net = Dumbbell(wired_trace(24), buffer_bytes=BUFFER_BYTES, rtt=RTT,
                   seed=1, aqm=aqm)
    net.add_flow(make_controller(cca, seed=1))
    result = net.run(DURATION)
    return result.utilization, result.flows[0].avg_rtt_ms


def main() -> None:
    print("== deep-buffered 24 Mbps link, 30 ms base RTT ==\n")
    print(f"{'setup':22s} {'link util':>10s} {'avg RTT':>10s}")
    for label, cca, aqm in (("CUBIC + droptail", "cubic", "droptail"),
                            ("CUBIC + CoDel (AQM)", "cubic", "codel"),
                            ("C-Libra + droptail", "c-libra", "droptail")):
        util, rtt = run(cca, aqm)
        print(f"{label:22s} {util:>9.1%} {rtt:>8.1f}ms")
    print("\nCoDel fixes CUBIC's bufferbloat but requires changing the")
    print("bottleneck device; Libra removes most of the standing queue")
    print("from the endpoint alone (the paper's flexibility argument).")


if __name__ == "__main__":
    main()
