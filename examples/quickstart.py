#!/usr/bin/env python3
"""Quickstart: run C-Libra on an emulated bottleneck and read the results.

Builds a 48 Mbps / 100 ms dumbbell with a 1-BDP droptail buffer, runs one
C-Libra flow next to plain CUBIC for comparison, and prints throughput,
delay, loss, and Libra's decision mix.
"""

from repro import Dumbbell, make_controller, wired_trace

DURATION = 20.0
BOTTLENECK_MBPS = 48.0
RTT = 0.1
BUFFER_BYTES = int(BOTTLENECK_MBPS * 1e6 * RTT / 8)  # 1 BDP


def run_one(cca_name: str) -> None:
    net = Dumbbell(wired_trace(BOTTLENECK_MBPS), buffer_bytes=BUFFER_BYTES,
                   rtt=RTT, seed=1)
    controller = make_controller(cca_name, seed=1)
    net.add_flow(controller)
    result = net.run(DURATION)
    flow = result.flows[0]
    print(f"{cca_name}:")
    print(f"  throughput   {flow.throughput_mbps:6.2f} Mbps "
          f"(link utilization {result.utilization:.1%})")
    print(f"  average RTT  {flow.avg_rtt_ms:6.1f} ms "
          f"(base RTT {RTT * 1e3:.0f} ms)")
    print(f"  loss rate    {flow.loss_rate:6.2%}")
    if hasattr(controller, "applied_fractions"):
        fractions = controller.applied_fractions()
        print(f"  decisions    x_prev {fractions['prev']:.0%} / "
              f"x_rl {fractions['rl']:.0%} / x_cl {fractions['cl']:.0%} "
              f"over {controller.cycles} control cycles")
    print()


def main() -> None:
    print(f"== {BOTTLENECK_MBPS:.0f} Mbps bottleneck, {RTT * 1e3:.0f} ms RTT, "
          f"1 BDP droptail buffer, {DURATION:.0f} s ==\n")
    run_one("cubic")
    run_one("c-libra")
    print("C-Libra should hold throughput close to CUBIC's while keeping the")
    print("average RTT near the base RTT instead of filling the buffer.")


if __name__ == "__main__":
    main()
