#!/usr/bin/env python3
"""Train Libra's DRL component (and the baselines' policies) from scratch.

Usage:
    python examples/train_policy.py libra            # one policy kind
    python examples/train_policy.py --all            # everything the
                                                     # evaluation needs
    python examples/train_policy.py libra --epochs 200 --out /tmp/w

Thin front-end over the :mod:`repro.train` pipeline.  For parallel
rollout workers, crash-safe checkpoints with ``--resume``, structured
JSONL logs, and eval-gated asset promotion, use the full CLI instead:

    python -m repro train libra --workers 4 --checkpoint-every 10 --promote

The repository ships pretrained weights in ``src/repro/assets``
(integrity-tracked by ``MANIFEST.json``); this script regenerates them
and keeps the manifest in sync.
"""

import argparse
import os
import sys

import numpy as np

from repro import assets
from repro.assets import _ASSET_DIR  # default output location
from repro.training import TRAIN_SPECS, train_and_save_all, train_policy


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("kind", nargs="?", choices=sorted(TRAIN_SPECS),
                        help="policy kind to train")
    parser.add_argument("--all", action="store_true",
                        help="train every policy kind")
    parser.add_argument("--epochs", type=int, default=80)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=_ASSET_DIR,
                        help="output directory for .npz weights")
    args = parser.parse_args(argv)

    if args.all:
        train_and_save_all(args.out, epochs=args.epochs, seed=args.seed)
        return 0
    if not args.kind:
        parser.error("give a policy kind or --all")

    policy, history = train_policy(args.kind, epochs=args.epochs,
                                   seed=args.seed)
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, f"{args.kind}.npz")
    policy.save(path)
    assets.update_manifest_entry(args.kind, asset_dir=args.out)
    tail = history.episode_rewards[-50:]
    print(f"trained {args.kind!r}: {len(history.episode_rewards)} episodes, "
          f"final avg reward {np.mean(tail):.3f}")
    print(f"saved to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
