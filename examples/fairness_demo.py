#!/usr/bin/env python3
"""Convergence to a fair share: three staggered C-Libra flows.

Reproduces the Fig. 15 setup interactively: three flows of the same CCA
join a 48 Mbps / 100 ms bottleneck 5 s apart.  Prints a coarse text plot
of each flow's throughput and the final Jain fairness index.
"""

from repro import Dumbbell, make_controller, wired_trace
from repro.metrics import jain_index

DURATION = 40.0
STAGGER = 5.0


def main() -> None:
    net = Dumbbell(wired_trace(48), buffer_bytes=600_000, rtt=0.1, seed=2)
    for i in range(3):
        net.add_flow(make_controller("c-libra", seed=1 + 37 * i),
                     start=i * STAGGER)
    result = net.run(DURATION)

    print("== three C-Libra flows, 48 Mbps, staggered 5 s ==\n")
    print("time   flow1   flow2   flow3   (Mbps, 2 s bins)")
    series = [f.throughput_series() for f in result.flows]
    for t in range(0, int(DURATION), 2):
        cells = []
        for flow_id, (times, rates) in enumerate(series):
            window = [r for ts, r in zip(times, rates) if t <= ts < t + 2]
            mean = sum(window) / len(window) if window else 0.0
            cells.append(f"{mean:6.1f}")
        print(f"{t:>4d}s " + "  ".join(cells))

    final = [f.throughput_mbps for f in result.flows]
    print(f"\nwhole-run throughputs: "
          + " / ".join(f"{t:.1f}" for t in final) + " Mbps")
    print(f"Jain fairness index:   {jain_index(final):.3f}")
    print(f"link utilization:      {result.utilization:.1%}")


if __name__ == "__main__":
    main()
