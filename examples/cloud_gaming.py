#!/usr/bin/env python3
"""Delay-sensitive application preferences on a cellular link.

The paper's motivating example: VR/AR and cloud gaming need low delay,
bulk transfer wants throughput.  Libra exposes this through the utility
presets (Sec. 5.2) — this example runs C-Libra with the default,
throughput-oriented (Th-2) and latency-oriented (La-2) presets on a
variable LTE trace and shows the trade-off an application can pick.
"""

from repro import Dumbbell, lte_trace, make_controller

DURATION = 20.0
RTT = 0.03
BUFFER_BYTES = 150_000


def run_preset(preset: str, seed: int = 3) -> dict:
    net = Dumbbell(lte_trace("walking", seed=seed), buffer_bytes=BUFFER_BYTES,
                   rtt=RTT, seed=seed)
    net.add_flow(make_controller("c-libra", seed=seed, utility_preset=preset))
    result = net.run(DURATION)
    flow = result.flows[0]
    return {
        "utilization": result.utilization,
        "avg_rtt_ms": flow.avg_rtt_ms,
        "p95_rtt_ms": flow.p95_rtt_ms(),
    }


def main() -> None:
    print("== C-Libra utility presets on an LTE walking trace ==\n")
    print(f"{'preset':10s} {'link util':>10s} {'avg RTT':>10s} {'p95 RTT':>10s}")
    for preset in ("th-2", "th-1", "default", "la-1", "la-2"):
        m = run_preset(preset)
        print(f"{preset:10s} {m['utilization']:>9.1%} "
              f"{m['avg_rtt_ms']:>8.1f}ms {m['p95_rtt_ms']:>8.1f}ms")
    print("\nA cloud-gaming session would pick La-2 (lowest delay); a bulk")
    print("download would pick Th-2 (highest utilization) — same kernel,")
    print("same CCA, one knob (Eq. 1's alpha/beta weights).")


if __name__ == "__main__":
    main()
