#!/usr/bin/env python3
"""Bulk transfer over a long, lossy path (Sec. 7's satellite discussion).

Satellite-like paths combine a long RTT with a noticeable stochastic
loss rate — exactly where loss-based CCAs collapse (every random loss
triggers a rate cut).  The paper argues Libra handles this via x_rl and
x_prev out-voting CUBIC's spurious reductions (Remark 3).  This example
sweeps the stochastic loss rate on a 600 ms-RTT path and compares CUBIC,
BBR and both Libra variants.
"""

from repro import Dumbbell, make_controller, wired_trace

DURATION = 30.0
RTT = 0.6            # GEO-satellite-class round trip
BANDWIDTH_MBPS = 20.0
BUFFER_BYTES = int(BANDWIDTH_MBPS * 1e6 * RTT / 8)


def run_one(cca: str, loss: float) -> float:
    net = Dumbbell(wired_trace(BANDWIDTH_MBPS), buffer_bytes=BUFFER_BYTES,
                   rtt=RTT, loss_rate=loss, seed=5)
    net.add_flow(make_controller(cca, seed=5))
    return net.run(DURATION).utilization


def main() -> None:
    ccas = ("cubic", "bbr", "c-libra", "b-libra")
    losses = (0.0, 0.02, 0.06)
    print(f"== {BANDWIDTH_MBPS:.0f} Mbps, {RTT * 1e3:.0f} ms RTT "
          f"(satellite-class), link utilization ==\n")
    print(f"{'loss':>6s}  " + "  ".join(f"{c:>8s}" for c in ccas))
    for loss in losses:
        cells = "  ".join(f"{run_one(c, loss):>8.1%}" for c in ccas)
        print(f"{loss:>6.0%}  {cells}")
    print("\nCUBIC's utilization collapses as stochastic loss grows.")
    print("B-Libra keeps the link busy (BBR's model ignores isolated")
    print("losses); C-Libra inherits some of CUBIC's loss sensitivity at")
    print("satellite RTTs — exactly the paper's Remark 8: loss resilience")
    print("depends on the underlying classic CCA, so pick BBR here.")


if __name__ == "__main__":
    main()
