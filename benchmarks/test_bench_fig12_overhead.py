"""Bench: Fig. 12 — CPU utilization vs sending rate."""

from repro.experiments.overhead import (FIG12_CAPACITIES_MBPS,
                                        libra_reduction, run_fig12)

from conftest import run_once


def test_fig12_overhead_vs_rate(benchmark, scale, capsys):
    caps = FIG12_CAPACITIES_MBPS if scale["duration"] > 30 else (10, 30, 100)
    data = run_once(benchmark, run_fig12, capacities_mbps=caps,
                    duration=scale["duration"])
    with capsys.disabled():
        print("\nFig.12 CPU utilization vs link capacity:")
        for cca, per_cap in data.items():
            row = "  ".join(f"{cpu:.3f}" for _, cpu in sorted(per_cap.items()))
            print(f"  {cca:10s} {row}")
        for base in ("orca", "indigo", "copa", "proteus"):
            print(f"  Libra reduction vs {base}: "
                  f"{libra_reduction(data, base):.0%}")
    # Shape: Libra's overhead tracks its kernel classic CCAs and sits
    # far below every pure learning-based CCA (Remark 5).
    assert libra_reduction(data, "proteus") > 0.5
    assert libra_reduction(data, "orca") > 0.2
