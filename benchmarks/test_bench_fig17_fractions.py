"""Bench: Fig. 17 — fraction of applied times for each candidate rate."""

from repro.experiments.deep_dive import run_fig17

from conftest import run_once


def test_fig17_decision_fractions(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig17, seeds=scale["seeds"][:2] or (1,),
                    duration=max(scale["duration"] * 2, 14.0))
    with capsys.disabled():
        print("\nFig.17 decision fractions (x_prev / x_rl / x_cl):")
        for variant, per_scenario in data.items():
            for scenario, fr in per_scenario.items():
                print(f"  {variant:8s} {scenario:9s} "
                      f"{fr['prev']:.2f} / {fr['rl']:.2f} / {fr['cl']:.2f}")
    # Shape: every kind of decision matters somewhere (Remark 9) — each
    # candidate wins a nonzero fraction in at least one scenario.
    for variant, per_scenario in data.items():
        for key in ("prev", "rl", "cl"):
            assert any(fr[key] > 0.0 for fr in per_scenario.values()), \
                f"{variant}: candidate {key} never wins"
