"""Bench: Tab. 2 — adding/removing states around the Baseline set."""

from repro.experiments.rl_ablation import run_tab2

from conftest import run_once


def test_tab2_state_deltas(benchmark, scale, capsys):
    epochs = 30 if scale["duration"] > 30 else 5
    data = run_once(benchmark, run_tab2, epochs=epochs, seed=1)
    with capsys.disabled():
        print("\nTab.2 deltas vs Baseline (reward%, thr%, lat%, loss pp):")
        for label, m in data.items():
            print(f"  {label:20s} {m['reward_delta']:+7.1f}% "
                  f"{m['throughput_delta']:+6.1f}% {m['latency_delta']:+6.1f}% "
                  f"{m['loss_delta']:+6.3f}")
    assert data["Baseline"]["reward_delta"] == 0.0
    assert set(data) == {"Baseline", "-(vi)", "+(i)(ii)", "+(i)(ii)(iii)",
                         "+(ii)(iii)(v)-(iv)", "+(iii)", "+(ii)", "+(i)",
                         "-(ix)"}
