"""Bench: Fig. 10 — impact of stochastic loss on utilization."""

from repro.experiments.sweeps import run_fig10

from conftest import run_once


def test_fig10_loss_sweep(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig10, seeds=scale["seeds"][:1],
                    duration=scale["duration"])
    with capsys.disabled():
        print("\nFig.10 stochastic-loss sweep (cca, loss, util):")
        for cca, per_loss in data.items():
            row = "  ".join(f"{m['utilization']:.2f}"
                            for _, m in sorted(per_loss.items()))
            print(f"  {cca:10s} {row}")
    # Shape: at 10% loss B-Libra stays high while CUBIC collapses.
    assert data["b-libra"][0.10]["utilization"] > \
        data["cubic"][0.10]["utilization"]
    # C-Libra recovers better than bare CUBIC at moderate loss.
    assert data["c-libra"][0.06]["utilization"] > \
        data["cubic"][0.06]["utilization"] * 0.9
