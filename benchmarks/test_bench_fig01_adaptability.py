"""Bench: Fig. 1 — adaptability under wired / cellular networks."""

from repro.experiments.adaptability import format_fig1, run_fig1

from conftest import run_once


def test_fig1_adaptability(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig1, ccas=("cubic", "bbr", "orca",
                                               "proteus", "c-libra"),
                    seeds=scale["seeds"], duration=scale["duration"])
    with capsys.disabled():
        print()
        print(format_fig1(data))
    # Shape: Libra keeps delay at or below CUBIC's on every LTE scenario.
    for scenario, per_cca in data.items():
        if scenario.startswith("lte"):
            assert per_cca["c-libra"]["avg_rtt_ms"] <= \
                per_cca["cubic"]["avg_rtt_ms"] * 1.1
