"""Bench: Fig. 14 — intra-protocol fairness (two same-CCA flows)."""

from repro.experiments.fairness import run_intra

from conftest import run_once

BENCH_CCAS = ("cubic", "bbr", "copa", "aurora", "proteus", "orca",
              "c-libra", "b-libra")


def test_fig14_intra_protocol(benchmark, scale, capsys):
    data = run_once(benchmark, run_intra, ccas=BENCH_CCAS,
                    seeds=scale["seeds"][:2] or (1,),
                    duration=scale["duration"] * 3)
    with capsys.disabled():
        print("\nFig.14 intra-protocol fairness (flow shares / jain):")
        for cca, m in data.items():
            print(f"  {cca:10s} {m['flow1_share']:.2f}/{m['flow2_share']:.2f} "
                  f"jain={m['jain']:.3f}")
    # Shape: Libra's intra-protocol Jain index is high (paper: ~0.99).
    assert data["c-libra"]["jain"] > 0.85
    assert data["b-libra"]["jain"] > 0.85
