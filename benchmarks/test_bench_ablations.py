"""Bench: design-choice ablations DESIGN.md calls out (beyond the
paper's printed figures): evaluation order, AQM-vs-Libra, and Libra over
alternative classic CCAs."""

from repro.experiments.ablations import (run_aqm_comparison, run_eval_order,
                                         run_other_classics)

from conftest import run_once


def test_ablation_eval_order(benchmark, scale, capsys):
    data = run_once(benchmark, run_eval_order, seeds=scale["seeds"][:2] or (1,),
                    duration=scale["duration"] * 2)
    with capsys.disabled():
        print("\nAblation: evaluation order (util / delay / loss):")
        for label, m in data.items():
            print(f"  {label:13s} {m['utilization']:.3f} "
                  f"{m['avg_rtt_ms']:6.1f}ms {m['loss_rate']:.4f}")
    # Fig. 4's claim: higher-first self-pollutes the measurements; the
    # paper's order must not perform worse overall.
    assert data["lower-first"]["utilization"] >= \
        data["higher-first"]["utilization"] - 0.05


def test_ablation_aqm_vs_libra(capsys, benchmark, scale):
    data = run_once(benchmark, run_aqm_comparison,
                    seeds=scale["seeds"][:1], duration=scale["duration"] * 2)
    with capsys.disabled():
        print("\nAblation: AQM vs end-to-end Libra (util / delay):")
        for label, m in data.items():
            print(f"  {label:17s} {m['utilization']:.3f} "
                  f"{m['avg_rtt_ms']:6.1f}ms")
    # Sec. 2's point: CUBIC needs CoDel for low delay; Libra gets a
    # large delay cut without any in-network change.
    assert data["cubic+codel"]["avg_rtt_ms"] < \
        data["cubic+droptail"]["avg_rtt_ms"]
    assert data["c-libra+droptail"]["avg_rtt_ms"] < \
        data["cubic+droptail"]["avg_rtt_ms"]


def test_ablation_other_classics(capsys, benchmark, scale):
    data = run_once(benchmark, run_other_classics,
                    seeds=scale["seeds"][:1], duration=scale["duration"] * 2)
    with capsys.disabled():
        print("\nAblation: Libra over other classic CCAs (util / delay):")
        for name, m in data.items():
            print(f"  {name:9s} {m['utilization']:.3f} "
                  f"{m['avg_rtt_ms']:6.1f}ms")
    # Sec. 7: the framework stays functional over Westwood/Illinois.
    for m in data.values():
        assert m["utilization"] > 0.6
