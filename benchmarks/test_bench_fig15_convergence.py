"""Bench: Fig. 15 / Tab. 5 — convergence of three staggered flows."""

from repro.experiments.convergence import run_fig15, run_tab5

from conftest import run_once

BENCH_CCAS = ("bbr", "cubic", "indigo", "proteus", "orca", "modified-rl",
              "c-libra", "b-libra")


def test_fig15_tab5_convergence(benchmark, scale, capsys):
    duration = max(scale["duration"] * 4, 32.0)
    fig15 = run_once(benchmark, run_fig15, ccas=BENCH_CCAS, seed=1,
                     duration=duration)
    tab5 = run_tab5(fig15, duration=duration)
    with capsys.disabled():
        print("\nTab.5 convergence of the 3rd flow "
              "(conv. time / deviation / avg thr):")
        for cca, stats in tab5.items():
            conv = stats["convergence_time"]
            conv_s = f"{conv:5.1f}s" if conv is not None else "    - "
            dev = stats["stability"]
            dev_s = f"{dev:5.2f}" if dev is not None else "   - "
            avg = stats["avg_throughput"]
            avg_s = f"{avg:5.1f}" if avg is not None else "   - "
            print(f"  {cca:12s} {conv_s} {dev_s} {avg_s}")
    # Shape: Libra converges (finite convergence time) and its third
    # flow gets a meaningful share.
    for libra in ("c-libra", "b-libra"):
        stats = tab5[libra]
        assert stats["convergence_time"] is not None
        assert stats["avg_throughput"] > 48.0 / 3.0 * 0.4
