"""Bench: Fig. 11 — flexible preferences through utility presets."""

from repro.experiments.flexibility import (PRESET_NAMES, run_single_flow,
                                           run_vs_cubic)

from conftest import run_once


def test_fig11_flexibility(benchmark, scale, capsys):
    def both():
        solo = run_single_flow(variants=("c-libra",),
                               seeds=scale["seeds"][:1],
                               duration=scale["duration"] * 2)
        versus = run_vs_cubic(variants=("c-libra",), seeds=scale["seeds"][:1],
                              duration=scale["duration"] * 2)
        return solo, versus

    solo, versus = run_once(benchmark, both)
    with capsys.disabled():
        print("\nFig.11(a)/(b) single flow per preset (util, delay ms):")
        for family, per_variant in solo.items():
            for key, m in per_variant.items():
                print(f"  {family:9s} {key:18s} {m['utilization']:.3f} "
                      f"{m['avg_delay_ms']:7.1f}")
        print("Fig.11(c)/(d) vs CUBIC (ratio, delay ms):")
        for key, m in versus.items():
            print(f"  {key:18s} {m['throughput_ratio']:.3f} "
                  f"{m['avg_delay_ms']:7.1f}")
    # Shape: the latency-most preset achieves the (or nearly the) lowest
    # delay among presets on cellular traces.
    cellular = solo["cellular"]
    delays = {p: cellular[f"c-libra-{p}"]["avg_delay_ms"]
              for p in PRESET_NAMES}
    assert delays["la-2"] <= min(delays.values()) + 10.0
