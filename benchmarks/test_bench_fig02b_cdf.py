"""Bench: Fig. 2(b) — CDF of link utilization over repeated LTE runs."""

from repro.experiments.practical_issues import run_fig2b

from conftest import run_once


def test_fig2b_utilization_cdf(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig2b, trials=scale["trials"],
                    duration=scale["duration"])
    with capsys.disabled():
        print("\nFig.2(b) utilization over repeated runs (mean / std):")
        for cca, stats in data.items():
            print(f"  {cca:10s} {stats['mean']:.3f} / {stats['std']:.3f}")
    # Shape: Libra's run-to-run variability stays below Orca's.
    assert data["c-libra"]["std"] <= data["orca"]["std"] + 0.03
