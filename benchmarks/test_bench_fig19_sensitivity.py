"""Bench: Fig. 19 / Tab. 7 — parameter sensitivity of C-Libra."""

from repro.experiments.sensitivity import run_fig19, run_tab7

from conftest import run_once


def test_fig19_tab7_sensitivity(benchmark, scale, capsys):
    def both():
        fig19 = run_fig19(configs=((1, 0.5, 1), (2, 0.5, 2), (3, 1, 3)),
                          seeds=scale["seeds"][:1],
                          duration=scale["duration"])
        tab7 = run_tab7(seeds=scale["seeds"][:1], duration=scale["duration"])
        return fig19, tab7

    fig19, tab7 = run_once(benchmark, both)
    with capsys.disabled():
        print("\nFig.19 stage-duration sensitivity (util / delay ms):")
        for label, families in fig19.items():
            for family, m in families.items():
                print(f"  {label:10s} {family:9s} {m['utilization']:.3f} "
                      f"{m['avg_delay_ms']:7.1f}")
        print("Tab.7 threshold sensitivity:")
        for label, families in tab7.items():
            for family, m in families.items():
                print(f"  {label:6s} {family:9s} {m['utilization']:.3f} "
                      f"{m['avg_delay_ms']:7.1f}")
    # Shape: low sensitivity — every configuration stays functional.
    for families in list(fig19.values()) + list(tab7.values()):
        for m in families.values():
            assert m["utilization"] > 0.5
