"""Bench: Tab. 4 — absolute reward r vs difference reward delta-r."""

from repro.experiments.rl_ablation import run_tab4

from conftest import run_once


def test_tab4_delta_reward(benchmark, scale, capsys):
    epochs = 30 if scale["duration"] > 30 else 8
    data = run_once(benchmark, run_tab4, epochs=epochs, seed=1)
    with capsys.disabled():
        print("\nTab.4 r vs delta-r (thr / latency / loss / Jain):")
        for label, m in data.items():
            print(f"  {label:8s} {m['throughput_mbps']:6.1f}Mbps "
                  f"{m['latency_ms']:7.1f}ms {m['loss_rate']:.4f} "
                  f"jain={m['fairness']:.3f}")
    assert set(data) == {"r", "delta-r"}
    for m in data.values():
        assert 0.0 < m["fairness"] <= 1.0
