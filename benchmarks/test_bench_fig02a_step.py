"""Bench: Fig. 2(a) — throughput over the step scenario."""

from repro.experiments.practical_issues import (run_fig2a,
                                                step_tracking_error)

from conftest import run_once


def test_fig2a_step_scenario(benchmark, scale, capsys):
    duration = max(scale["duration"] * 3, 24.0)
    data = run_once(benchmark, run_fig2a, seed=1, duration=duration)
    trace = data["levels"]
    errors = {cca: step_tracking_error(series, trace, duration)
              for cca, series in data["series"].items()}
    with capsys.disabled():
        print("\nFig.2(a) step-scenario mean tracking error |thr-cap|/cap:")
        for cca, err in errors.items():
            print(f"  {cca:10s} {err:.3f}")
    # Shape: Libra follows the steps at least as well as pure learners.
    assert errors["c-libra"] <= errors["cl-libra"] + 0.1
