"""Bench: Fig. 16 — live-Internet surrogate (inter/intra-continental)."""

from repro.experiments.internet import run_fig16

from conftest import run_once


def test_fig16_internet(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig16, seeds=scale["seeds"][:2] or (1,),
                    duration=max(scale["duration"] * 2, 16.0))
    with capsys.disabled():
        print("\nFig.16 emulated WAN (normalized thr / normalized delay):")
        for scenario, per_cca in data.items():
            print(f"  {scenario}")
            for cca, m in per_cca.items():
                print(f"    {cca:10s} {m['normalized_throughput']:.2f} "
                      f"{m['normalized_delay']:.2f}")
    # Shape: Libra variants stay competitive on throughput in both
    # scenarios (paper: top-right of Fig. 16).
    for scenario in data.values():
        best = max(m["normalized_throughput"] for m in scenario.values())
        libra_best = max(scenario["c-libra"]["normalized_throughput"],
                         scenario["b-libra"]["normalized_throughput"])
        assert libra_best > 0.55 * best
