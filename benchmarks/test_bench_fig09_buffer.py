"""Bench: Fig. 9 — impact of buffer size on utilization and delay."""

from repro.experiments.sweeps import buffer_sensitivity, run_fig9

from conftest import run_once


def test_fig9_buffer_sweep(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig9, seeds=scale["seeds"][:1],
                    duration=scale["duration"])
    with capsys.disabled():
        print("\nFig.9 buffer sweep (cca, buffer KB, util, delay ms):")
        for cca, per_buffer in data.items():
            for size, m in sorted(per_buffer.items()):
                print(f"  {cca:10s} {size // 1000:5d}  "
                      f"{m['utilization']:.3f}  {m['avg_rtt_ms']:7.1f}")
    # Shape: CUBIC's delay grows strongly with buffer depth; Libra's
    # growth is much smaller (low buffer sensitivity, Remark 2).
    assert buffer_sensitivity(data["c-libra"]) < \
        buffer_sensitivity(data["cubic"])
