"""Bench: Fig. 2(c) — normalized CPU / memory overhead."""

from repro.experiments.overhead import run_fig2c

from conftest import run_once


def test_fig2c_overhead(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig2c, duration=scale["duration"])
    with capsys.disabled():
        print("\nFig.2(c) normalized overhead:")
        for cca, v in data.items():
            print(f"  {cca:10s} cpu={v['cpu_normalized']:.2f} "
                  f"mem={v['memory_normalized']:.2f}")
    # Shape: pure learning-based CCAs dominate the chart; Libra stays
    # near its kernel classic CCAs.
    assert data["proteus"]["cpu_normalized"] == 1.0
    assert data["c-libra"]["cpu_normalized"] < data["orca"]["cpu_normalized"]
    assert data["cubic"]["cpu_normalized"] < 0.1
