"""Bench: Fig. 8 — following the changing link capacity in LTE networks."""

import numpy as np

from repro.experiments.adaptability import run_fig8

from conftest import run_once


def test_fig8_lte_tracking(benchmark, scale, capsys):
    duration = max(scale["duration"] * 2, 16.0)
    data = run_once(benchmark, run_fig8, duration=duration, seed=3)
    cap_times, cap_rates = data["capacity"]

    def tracking_error(series):
        times, rates = series
        cap = np.interp(times, cap_times, cap_rates)
        mask = cap > 0.5
        return float(np.mean(np.abs(np.asarray(rates)[mask] - cap[mask])
                             / cap[mask]))

    errors = {cca: tracking_error(series)
              for cca, series in data["series"].items()}
    with capsys.disabled():
        print("\nFig.8 LTE capacity-tracking error (lower is better):")
        for cca, err in sorted(errors.items(), key=lambda kv: kv[1]):
            print(f"  {cca:10s} {err:.3f}")
    # Shape: Libra variants track the varying capacity competitively.
    assert errors["c-libra"] < errors["proteus"] + 0.15
