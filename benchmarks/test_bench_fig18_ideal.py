"""Bench: Fig. 18 — Libra vs the offline ideal combination."""

from repro.experiments.deep_dive import run_fig18

from conftest import run_once


def test_fig18_vs_ideal(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig18, seed=2,
                    duration=max(scale["duration"] * 2, 16.0))
    with capsys.disabled():
        print(f"\nFig.18 normalized mean utility: "
              f"libra={data['libra_mean']:.3f} ideal={data['ideal_mean']:.3f}")
    # Shape: the online combination approaches the offline ideal
    # (Remark 10: close most of the time, occasionally above).
    assert data["libra_mean"] > 0.5 * data["ideal_mean"]
