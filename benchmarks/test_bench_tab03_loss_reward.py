"""Bench: Tab. 3 — reward with vs without the loss-rate term."""

from repro.experiments.rl_ablation import run_tab3

from conftest import run_once


def test_tab3_loss_in_reward(benchmark, scale, capsys):
    epochs = 30 if scale["duration"] > 30 else 8
    data = run_once(benchmark, run_tab3, epochs=epochs, seed=1)
    with capsys.disabled():
        print("\nTab.3 loss-term ablation (thr Mbps / latency ms / loss):")
        for label, m in data.items():
            print(f"  {label:15s} {m['throughput_mbps']:6.1f} "
                  f"{m['latency_ms']:7.1f} {m['loss_rate']:.4f}")
    # Shape: dropping the loss term must not *reduce* loss (paper: it
    # explodes to 37.5%).
    assert data["w/o loss rate"]["loss_rate"] >= \
        data["with loss rate"]["loss_rate"] - 1e-6
