"""Bench: Tab. 6 — safety assurance over repeated trials."""

from repro.experiments.safety import run_tab6

from conftest import run_once


def test_tab6_safety(benchmark, scale, capsys):
    data = run_once(benchmark, run_tab6, trials=scale["trials"],
                    duration=scale["duration"])
    with capsys.disabled():
        print("\nTab.6 utilization over repeated trials "
              "(mean / range / std):")
        for net_name, per_cca in data.items():
            print(f"  {net_name}")
            for cca, stats in per_cca.items():
                print(f"    {cca:10s} {stats['mean']:.3f} "
                      f"{stats['range']:.3f} {stats['std']:.3f}")
    # Shape: averaged across networks, Libra's spread stays at or below
    # Orca's (the paper's 0.17-0.52x std ratio).
    import numpy as np
    orca_std = np.mean([d["orca"]["std"] for d in data.values()])
    libra_std = np.mean([d["c-libra"]["std"] for d in data.values()])
    assert libra_std <= orca_std + 0.02
