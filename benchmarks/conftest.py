"""Shared configuration for the benchmark harness.

Every bench regenerates one paper artifact (figure or table) at reduced
scale — short simulated durations and few seeds — and prints the same
rows/series the paper reports.  Pass ``--paper-scale`` to run the full
durations (minutes per bench).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption("--paper-scale", action="store_true", default=False,
                     help="run benches at the paper's full durations")


@pytest.fixture
def scale(request):
    """(duration multiplier, seeds) for bench runs."""
    if request.config.getoption("--paper-scale"):
        return {"duration": 60.0, "seeds": (1, 2, 3, 4, 5), "trials": 20}
    return {"duration": 8.0, "seeds": (1,), "trials": 4}


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
