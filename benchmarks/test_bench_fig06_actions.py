"""Bench: Fig. 6 — AIAD vs MIMD action spaces across scale factors."""

from repro.experiments.rl_ablation import curve_rise_time, run_fig6

from conftest import run_once


def test_fig6_action_spaces(benchmark, scale, capsys):
    epochs = 30 if scale["duration"] > 30 else 6
    data = run_once(benchmark, run_fig6, epochs=epochs, seed=1)
    with capsys.disabled():
        print("\nFig.6 final smoothed reward / rise time (episodes):")
        for mode, per_scale in data.items():
            for s, curve in per_scale.items():
                print(f"  {mode:5s} scale={s:<4} final={curve[-1]:7.3f} "
                      f"rise={curve_rise_time(curve)}")
    assert set(data) == {"aiad", "mimd"}
    assert set(data["aiad"]) == {1.0, 5.0, 10.0}
