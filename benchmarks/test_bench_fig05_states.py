"""Bench: Fig. 5 — reward comparison of state-space combinations."""

from repro.experiments.rl_ablation import run_fig5

from conftest import run_once


def test_fig5_state_spaces(benchmark, scale, capsys):
    epochs = 30 if scale["duration"] > 30 else 6
    data = run_once(benchmark, run_fig5, epochs=epochs, seed=1)
    with capsys.disabled():
        print("\nFig.5 final smoothed reward per state space:")
        for name, m in sorted(data.items(), key=lambda kv: -kv[1]["final_reward"]):
            print(f"  {name:10s} {m['final_reward']:8.3f}")
    # Shape: every state space trains to a finite reward and Libra's
    # searched set is competitive (top half).
    ranked = sorted(data, key=lambda k: -data[k]["final_reward"])
    assert ranked.index("libra") < len(ranked) - 1
