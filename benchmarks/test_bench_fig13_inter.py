"""Bench: Fig. 13 — inter-protocol fairness against CUBIC."""

from repro.experiments.fairness import run_inter

from conftest import run_once

BENCH_CCAS = ("cubic", "bbr", "copa", "aurora", "proteus", "orca",
              "c-libra", "b-libra")


def test_fig13_inter_protocol(benchmark, scale, capsys):
    data = run_once(benchmark, run_inter, ccas=BENCH_CCAS,
                    seeds=scale["seeds"][:2] or (1,),
                    duration=scale["duration"] * 3)
    with capsys.disabled():
        print("\nFig.13 inter-protocol fairness vs CUBIC (share / jain):")
        for cca, m in data.items():
            print(f"  {cca:10s} {m['cca_share']:.2f}/{m['cubic_share']:.2f} "
                  f"jain={m['jain']:.3f}")
    # Shape: Libra neither starves CUBIC nor gets starved (Remark 6 —
    # the goal is avoiding starvation, not perfect equality; B-Libra
    # inherits a share of BBR's well-known aggression against
    # loss-based flows at 1 BDP).
    for libra in ("c-libra", "b-libra"):
        assert 0.15 < data[libra]["cca_share"] < 0.85
        assert data[libra]["jain"] > 0.7
    assert data["c-libra"]["jain"] > 0.9
