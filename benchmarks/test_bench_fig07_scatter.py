"""Bench: Fig. 7 — throughput/delay over four wired + four cellular traces."""

from repro.experiments.adaptability import format_fig7, run_fig7

from conftest import run_once

BENCH_CCAS = ("cubic", "bbr", "copa", "sprout", "remy", "indigo", "aurora",
              "vivace", "proteus", "orca", "modified-rl", "cl-libra",
              "c-libra", "b-libra")


def test_fig7_scatter(benchmark, scale, capsys):
    data = run_once(benchmark, run_fig7, ccas=BENCH_CCAS,
                    seeds=scale["seeds"][:1], duration=scale["duration"])
    with capsys.disabled():
        print()
        print(format_fig7(data))
    wired = data["wired"]
    # Shape: C-Libra holds near-CUBIC throughput at lower delay (Pareto).
    assert wired["c-libra"]["normalized_throughput"] > \
        0.85 * wired["cubic"]["normalized_throughput"]
    assert wired["c-libra"]["avg_delay_ms"] < wired["cubic"]["avg_delay_ms"]
